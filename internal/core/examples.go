package core

import "repro/internal/system"

// This file constructs the paper's two small counterexample systems so the
// test suite, the experiments binary, and the benchmarks can machine-check
// the claims made about them.

// Fig1 builds the Section 2.1 counterexample showing that plain refinement
// is not stabilization preserving (Figure 1).
//
// States are s0, s1, ..., s(k-1) arranged in a chain that loops at the end
// (the paper's "s0, s1, s2, s3, …" made finite), plus s* (index k). In
// both A and C the only computation from the initial state s0 is the
// chain. A additionally has the transition s* → s2, so A recovers from the
// fault state s*; C leaves s* terminal. Hence [C ⊑ A]_init holds, A is
// stabilizing to A, but C is not stabilizing to A.
func Fig1(k int) (a, c *system.System) { //gcvet:gasloop-ok constructs the fixed-size Figure-1 example; work is k+1 states by construction
	if k < 3 {
		panic("core: Fig1 needs at least 3 chain states")
	}
	n := k + 1 // chain + s*
	star := k

	ab := system.NewBuilder("A_fig1", n)
	cb := system.NewBuilder("C_fig1", n)
	for i := 0; i+1 < k; i++ {
		ab.AddTransition(i, i+1)
		cb.AddTransition(i, i+1)
	}
	// Keep computations infinite, as in the figure's "s3, …": loop the tail.
	ab.AddTransition(k-1, k-2)
	cb.AddTransition(k-1, k-2)
	// A alone recovers from s*.
	ab.AddTransition(star, 2)
	ab.AddInit(0)
	cb.AddInit(0)
	return ab.Build(), cb.Build()
}

// OddEvenRecovery builds the Section 7 example separating convergence
// refinement from everywhere-eventually refinement: A stabilizes to s0
// along odd-numbered states (s* s3 s1 s0) while C recovers from s* along
// even-numbered states (s* s4 s2 s0). C is an everywhere-eventually
// refinement of A — after a finite prefix over even states it behaves as A
// — but not a convergence refinement of A, because A's computations never
// visit s4: C's recovery path is not a subsequence of any of A's.
//
// States: 0..4 are s0..s4; index 5 is s*. In both systems s0 has a
// self-loop (the stabilized behavior) and s0 is initial. C retains A's odd
// recovery edges so it has no terminal states A lacks; its divergence from
// A is exactly the even path out of s*.
func OddEvenRecovery() (a, c *system.System) {
	const n = 6
	const star = 5

	ab := system.NewBuilder("A_oddpath", n)
	ab.AddTransition(star, 3)
	ab.AddTransition(3, 1)
	ab.AddTransition(1, 0)
	ab.AddTransition(0, 0)
	ab.AddInit(0)

	cb := system.NewBuilder("C_evenpath", n)
	cb.AddTransition(star, 4)
	cb.AddTransition(4, 2)
	cb.AddTransition(2, 0)
	cb.AddTransition(3, 1) // A's odd path retained
	cb.AddTransition(1, 0)
	cb.AddTransition(0, 0)
	cb.AddInit(0)
	return ab.Build(), cb.Build()
}
