package core

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/mc"
	"repro/internal/system"
)

// FairStabilizing decides stabilization under weak fairness: "every
// weakly-fair computation of C has a suffix that is a suffix of an
// A-from-init computation". A computation is weakly fair when every
// action that is continuously enabled from some point on is taken
// infinitely often; finite maximal computations are fair trivially.
// Fairness needs action identity, so C is given as a LabeledSystem.
//
// The paper's Section 3–6 systems are analyzed unfair (Dijkstra's
// protocols stabilize under any daemon), but two of the mechanized
// findings — the Lemma 9 staircase at N = 4 and its C2 counterpart — are
// schedules that perpetually starve an enabled process. FairStabilizing
// re-examines such findings under the weaker adversary.
//
// Decision procedure: as in Stabilizing, a violation needs either a bad
// terminal or infinitely many bad events. The states a fair infinite
// computation visits infinitely often form a strongly connected set I;
// for every action α, either α is disabled somewhere in I or an α-edge
// inside I is taken. If a maximal SCC S has an action enabled at every
// one of its states but no such edge within S, then NO subset of S hosts
// a fair run (the action is continuously enabled yet never taken), so S
// is discarded entirely; otherwise a tour of all of S realizes a fair
// run and covers any bad event S contains. Pure-stutter cycles are
// handled with the unfair rule, which is conservative under fairness
// (strip τ self-loops first, as the Section 6 analyses do).
func FairStabilizing(c *system.LabeledSystem, a *system.System, ab *system.Abstraction) *StabilizationReport {
	rep, _ := FairStabilizingGas(nil, c, a, ab)
	return rep
}

// FairStabilizingGas is FairStabilizing under a meter: the terminal
// scan, the SCC analysis, and the legitimate-region sweep all charge
// g, so a budget bounds the whole decision procedure.
func FairStabilizingGas(g *mc.Gas, c *system.LabeledSystem, a *system.System, ab *system.Abstraction) (*StabilizationReport, error) {
	base := c.Base()
	relation := fmt.Sprintf("%s is stabilizing to %s under weak fairness", base.Name(), a.Name())
	rep := &StabilizationReport{}
	alpha, stutterOK, err := alphaOf(base, a, ab)
	if err != nil {
		rep.Verdict = fail(relation, err.Error(), nil, nil)
		return rep, nil
	}
	legit, err := mc.ReachFromInitGas(g, a)
	if err != nil {
		return nil, err
	}
	rep.ReachableLegit = legit.Count()

	badState := func(s int) bool { return !legit.Has(alpha.Of(s)) }
	badEdge := func(s, t int) bool {
		as, at := alpha.Of(s), alpha.Of(t)
		if a.HasTransition(as, at) {
			return false
		}
		return !(stutterOK && as == at)
	}

	// Violation 1: bad terminals (fairness is vacuous on finite maximal
	// computations).
	for s := 0; s < base.NumStates(); s++ {
		if err := g.Tick(1); err != nil {
			return nil, err
		}
		if !base.Terminal(s) {
			continue
		}
		as := alpha.Of(s)
		if !a.Terminal(as) || badState(s) {
			rep.Verdict = fail(relation,
				fmt.Sprintf("the one-state computation at terminal %s has no valid suffix: α-image %s is %s",
					base.StateString(s), a.StateString(as), describeBadAnchor(a, as, legit)),
				[]int{s}, nil)
			return rep, nil
		}
	}

	// Violation 2: fairness-admissible SCCs containing a bad event.
	comps, comp, err := mc.SCCsGas(g, base, nil)
	if err != nil {
		return nil, err
	}
	for _, scc := range comps {
		if err := g.Tick(1); err != nil {
			return nil, err
		}
		if !sccCyclic(base, scc) {
			continue
		}
		bad := sccBadEvent(scc, comp, c, badState, badEdge)
		if bad == nil {
			continue
		}
		if starved := sccStarvedAction(scc, comp, c); starved >= 0 {
			// Some action is enabled at every state of the SCC but never
			// taken inside it: no fair run can stay here.
			continue
		}
		rep.Verdict = fail(relation,
			fmt.Sprintf("a weakly-fair computation sustains bad event %s inside a %d-state component",
				bad, len(scc)),
			[]int{scc[0]}, cycleOf(base, scc))
		return rep, nil
	}

	// Violation 3 (conservative): pure-stutter divergence.
	if stutterOK {
		v, bad, err := checkStutterCycles(g, relation, base, a, alpha, bitset.Full(base.NumStates()))
		if err != nil {
			return nil, err
		}
		if bad {
			v.Relation = relation
			rep.Verdict = v
			return rep, nil
		}
	}

	// Legitimate region, as in the unfair check.
	badCore := bitset.New(base.NumStates())
	for s := 0; s < base.NumStates(); s++ {
		if err := g.Tick(1); err != nil {
			return nil, err
		}
		if badState(s) {
			badCore.Add(s)
			continue
		}
		for _, t := range base.Succ(s) {
			if badEdge(s, t) {
				badCore.Add(s)
				break
			}
		}
	}
	canReachBad, err := mc.CanReachGas(g, base, badCore)
	if err != nil {
		return nil, err
	}
	good := canReachBad.Complement()
	rep.Legitimate = good.Members()
	rep.Verdict = ok(relation,
		fmt.Sprintf("every weakly-fair computation has a suffix tracking %s; %d of %d states are legitimate",
			a.Name(), good.Count(), base.NumStates()))
	return rep, nil
}

// sccCyclic reports whether the component sustains an infinite run.
func sccCyclic(base *system.System, scc []int) bool {
	if len(scc) > 1 {
		return true
	}
	return base.HasTransition(scc[0], scc[0])
}

// sccBadEvent returns a description of a bad event inside the component,
// or nil if none: a bad state, or a bad edge with both endpoints in the
// component.
func sccBadEvent(scc []int, comp []int, c *system.LabeledSystem, badState func(int) bool, badEdge func(int, int) bool) fmt.Stringer {
	base := c.Base()
	target := comp[scc[0]]
	for _, s := range scc {
		if badState(s) {
			return stringerf("state %s", base.StateString(s))
		}
		for _, t := range base.Succ(s) {
			if comp[t] == target && badEdge(s, t) {
				return stringerf("step %s → %s", base.StateString(s), base.StateString(t))
			}
		}
	}
	return nil
}

// sccStarvedAction returns an action enabled at every state of the
// component with no edge of that action inside the component, or −1.
func sccStarvedAction(scc []int, comp []int, c *system.LabeledSystem) int {
	target := comp[scc[0]]
	for a := 0; a < c.NumActions(); a++ {
		everywhere := true
		taken := false
		for _, s := range scc {
			if !c.Enabled(s, a) {
				everywhere = false
				break
			}
			for _, e := range c.Edges(s) {
				if e.Action == a && comp[e.To] == target {
					taken = true
				}
			}
		}
		if everywhere && !taken {
			return a
		}
	}
	return -1
}

// cycleOf extracts a witness cycle from a component.
func cycleOf(base *system.System, scc []int) []int {
	members := bitset.New(base.NumStates())
	for _, s := range scc {
		members.Add(s)
	}
	if cyc := mc.FindCycleWithin(base, members); cyc != nil {
		return cyc.States
	}
	return nil
}

// stringerf formats a string usable as a fmt.Stringer.
func stringerf(format string, args ...interface{}) fmt.Stringer {
	return stringerVal(fmt.Sprintf(format, args...))
}

// stringerVal is a string with a String method.
type stringerVal string

// String implements fmt.Stringer.
func (s stringerVal) String() string { return string(s) }
