// Package core implements the definitions and theorems of Sections 2 and 7
// of "Convergence Refinement" (Demirbas & Arora, ICDCS 2002) as decision
// procedures over finite-state systems:
//
//   - refinement with respect to initial states            [C ⊑ A]_init
//   - everywhere refinement                                [C ⊑ A]
//   - convergence refinement                               [C ⪯ A]
//   - everywhere-eventually refinement (Section 7)
//   - stabilization                                        "C is stabilizing to A"
//
// All relations optionally go through a Section 2.3 abstraction function α
// relating different state spaces. With an abstraction, mapped concrete
// computations are compared modulo stuttering: a concrete step whose two
// endpoints have the same α-image is a τ step (Section 6's C3 takes such
// steps), and the destuttered image must track the abstract system. With a
// nil abstraction (shared state space) the Section 2 definitions apply
// verbatim, with no stutter allowance.
//
// Every checker returns a Verdict carrying a human-readable reason and,
// when the relation fails, a concrete counterexample (a finite path or a
// lasso denoting an infinite computation).
package core

import (
	"fmt"
	"strings"

	"repro/internal/system"
)

// Verdict is the outcome of one relation check.
type Verdict struct {
	// Holds reports whether the relation was established.
	Holds bool
	// Relation names the relation checked, e.g. "[C1 ⪯ BTR]".
	Relation string
	// Reason explains the outcome in one or two sentences.
	Reason string
	// Witness is a counterexample path of concrete states (empty when the
	// relation holds). For an infinite counterexample, WitnessLoop holds
	// the cycle entered after Witness.
	Witness     []int
	WitnessLoop []int
}

// ok builds a passing verdict.
func ok(relation, reason string) Verdict {
	return Verdict{Holds: true, Relation: relation, Reason: reason}
}

// fail builds a failing verdict with an optional witness.
func fail(relation, reason string, witness, loop []int) Verdict {
	return Verdict{Relation: relation, Reason: reason, Witness: witness, WitnessLoop: loop}
}

// String renders the verdict as a single line.
func (v Verdict) String() string {
	mark := "✗"
	if v.Holds {
		mark = "✓"
	}
	s := fmt.Sprintf("%s %s — %s", mark, v.Relation, v.Reason)
	if len(v.Witness) > 0 {
		s += fmt.Sprintf(" (witness: %d states", len(v.Witness))
		if len(v.WitnessLoop) > 0 {
			s += fmt.Sprintf(" + %d-state loop", len(v.WitnessLoop))
		}
		s += ")"
	}
	return s
}

// FormatWitness renders the counterexample using sys's state formatter.
func (v Verdict) FormatWitness(sys *system.System) string { //gcvet:gasloop-ok formats an already-computed witness; bounded by its length
	if len(v.Witness) == 0 {
		return ""
	}
	var b strings.Builder
	for i, s := range v.Witness {
		if i > 0 {
			b.WriteString(" → ")
		}
		b.WriteString(sys.StateString(s))
	}
	if len(v.WitnessLoop) > 0 {
		b.WriteString(" → [loop: ")
		for i, s := range v.WitnessLoop {
			if i > 0 {
				b.WriteString(" → ")
			}
			b.WriteString(sys.StateString(s))
		}
		b.WriteString("]")
	}
	return b.String()
}

// Compression records one transition of the concrete system that covers a
// multi-step path of the abstract system — the paper's "compressed forms of
// computations" (Section 4.2). Omissions is the number of abstract states
// dropped (cover length − 2).
type Compression struct {
	From, To  int
	Omissions int
	// Cover is the abstract path realized by the concrete step, from
	// α(From) to α(To) inclusive.
	Cover []int
}

// ConvergenceReport is the detailed outcome of a convergence-refinement
// check.
type ConvergenceReport struct {
	Verdict
	// RefinementInit is the verdict of the embedded [C ⊑ A]_init check.
	RefinementInit Verdict
	// Compressions lists the concrete transitions that compress abstract
	// computations. Empty for everywhere refinements (and for C3, whose τ
	// steps stutter instead of compressing — Lemma 12).
	Compressions []Compression
	// StutterEdges counts concrete transitions whose endpoints share an
	// α-image.
	StutterEdges int
	// ExactEdges counts concrete transitions mapping to single abstract
	// transitions.
	ExactEdges int
}

// StabilizationReport is the detailed outcome of a stabilization check.
type StabilizationReport struct {
	Verdict
	// Legitimate is the set of concrete states from which the system
	// thereafter tracks A-from-init computations (the greatest such set),
	// as sorted state indices.
	Legitimate []int
	// ReachableLegit counts abstract states reachable from A's initial
	// states (the target region's size).
	ReachableLegit int
}
