package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/system"
)

// randomLabeled builds a random labeled system over a small integer space
// with a handful of guarded actions, plus a matching unlabeled spec whose
// legitimate behavior is the self-loop region {0}.
func randomLabeled(rng *rand.Rand) (*system.LabeledSystem, *system.System) {
	card := 3 + rng.Intn(4)
	sp := system.NewSpace(system.Int("x", card))
	nActs := 2 + rng.Intn(4)
	acts := make([]system.Action, 0, nActs)
	// Always include the legitimate self-loop at 0 so the spec region is
	// inhabited.
	acts = append(acts, system.Action{
		Name:   "stay",
		Guard:  func(v system.Vals) bool { return v[0] == 0 },
		Effect: func(v system.Vals) { v[0] = 0 },
	})
	for i := 1; i < nActs; i++ {
		lo := rng.Intn(card)
		target := rng.Intn(card)
		acts = append(acts, system.Action{
			Name:  fmt.Sprintf("a%d", i),
			Guard: func(v system.Vals) bool { return v[0] >= lo && v[0] != target },
			Effect: func(v system.Vals) {
				v[0] = target
			},
		})
	}
	c := system.EnumerateLabeled("randL", sp, acts, func(v system.Vals) bool { return v[0] == 0 })

	ab := system.NewBuilder("specA", card)
	ab.AddTransition(0, 0)
	ab.AddInit(0)
	return c, ab.Build()
}

// TestQuickFairWeakerThanUnfair: on random labeled systems, whenever the
// unfair stabilization check passes, the weak-fairness check must pass
// too (fair computations are a subset of all computations), and whenever
// the fair check fails, the unfair one must fail as well.
func TestQuickFairWeakerThanUnfair(t *testing.T) {
	agreePass, agreeFail, fairOnly := 0, 0, 0
	for trial := 0; trial < 400; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		c, a := randomLabeled(rng)
		unfair := Stabilizing(c.Base(), a, nil)
		fair := FairStabilizing(c, a, nil)
		switch {
		case unfair.Holds && !fair.Holds:
			t.Fatalf("trial %d: unfair passes but fair fails\nunfair: %s\nfair: %s",
				trial, unfair.Verdict, fair.Verdict)
		case unfair.Holds && fair.Holds:
			agreePass++
		case !unfair.Holds && fair.Holds:
			fairOnly++
		default:
			agreeFail++
		}
	}
	// The generator must exercise all three reachable cells.
	if agreePass == 0 || agreeFail == 0 || fairOnly == 0 {
		t.Fatalf("generator too narrow: pass=%d fail=%d fairOnly=%d", agreePass, agreeFail, fairOnly)
	}
}
