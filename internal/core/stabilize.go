package core

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/mc"
	"repro/internal/system"
)

// Stabilizing decides the paper's tolerance definition exactly: "C is
// stabilizing to A iff every computation of C has a suffix that is a
// suffix of some computation of A that starts at an initial state of A."
// Transient faults are modeled by letting computations of C start anywhere
// in Σ, so the check quantifies over all states, not just C's initial ones.
//
// The decision rests on a finite-state characterization. Call an
// occurrence in a computation a *bad event* if it is
//
//   - a state whose α-image is not reachable from A's initial states, or
//   - a step that is neither an A-transition (under α) nor a stutter.
//
// A suffix starting after the last bad event follows A's transitions
// through A-reachable states, so it is a suffix of an A-from-init
// computation (its finite endpoint must additionally be A-terminal).
// Hence a computation has a valid suffix iff it contains finitely many bad
// events and ends well. On a finite automaton, the violations are exactly:
//
//  1. a terminal state of C whose α-image is not an A-reachable terminal
//     state of A (the one-state computation starting there has no valid
//     suffix);
//  2. a bad state or bad step lying on a cycle of C (a computation can
//     loop through it forever, incurring infinitely many bad events);
//  3. a cycle of pure stutter steps whose abstract image is not
//     A-terminal (the computation loops forever while its destuttered
//     image stalls as a finite, non-maximal sequence).
//
// Passing A as both arguments (with a nil abstraction) decides
// self-stabilization, "A is stabilizing to A".
func Stabilizing(c, a *system.System, ab *system.Abstraction) *StabilizationReport {
	rep, _ := StabilizingGas(nil, c, a, ab)
	return rep
}

// StabilizingGas is Stabilizing under a meter: every state-space sweep
// ticks g, and the check returns g's error (cancellation or budget
// exhaustion) instead of running to completion.
func StabilizingGas(g *mc.Gas, c, a *system.System, ab *system.Abstraction) (*StabilizationReport, error) {
	relation := fmt.Sprintf("%s is stabilizing to %s", c.Name(), a.Name())
	legit, err := mc.ReachFromInitGas(g, a)
	if err != nil {
		return nil, err
	}
	rep, err := suffixTracking(g, relation, c, a, ab, legit)
	if err != nil {
		return nil, err
	}
	rep.ReachableLegit = legit.Count()
	return rep, nil
}

// SelfStabilizing decides "A is stabilizing to A".
func SelfStabilizing(a *system.System) *StabilizationReport {
	return Stabilizing(a, a, nil)
}

// SelfStabilizingGas is SelfStabilizing under a meter.
func SelfStabilizingGas(g *mc.Gas, a *system.System) (*StabilizationReport, error) {
	return StabilizingGas(g, a, a, nil)
}

// EverywhereEventuallyRefinement decides the Section 7 relation: C is an
// everywhere-eventually refinement of A iff (1) [C ⊑ A]_init and (2) every
// computation of C is an arbitrary finite prefix over Σ followed by a
// computation of A. The A-suffix may start at any state of A — not just
// the reachable ones — and may use recovery paths entirely different from
// A's, which is why this relation is too permissive for graybox wrapper
// design (see the odd/even recovery-path example in this package's tests).
func EverywhereEventuallyRefinement(c, a *system.System, ab *system.Abstraction) Verdict {
	relation := fmt.Sprintf("[%s ⊑ee %s]", c.Name(), a.Name())
	if v := RefinementInit(c, a, ab); !v.Holds {
		return fail(relation, "the embedded [C ⊑ A]_init check failed: "+v.Reason, v.Witness, v.WitnessLoop)
	}
	// Same finitely-many-bad-events machinery, but with no reachability
	// constraint on A's side: the suffix may be a computation of A from
	// anywhere.
	rep, _ := suffixTracking(nil, relation, c, a, ab, nil)
	return rep.Verdict
}

// suffixTracking implements the shared finitely-many-bad-events check.
// legit, when non-nil, restricts valid suffixes to α-images inside it
// (stabilization); nil means any A state may anchor the suffix
// (everywhere-eventually refinement).
func suffixTracking(g *mc.Gas, relation string, c, a *system.System, ab *system.Abstraction, legit *bitset.Set) (*StabilizationReport, error) {
	rep := &StabilizationReport{}
	alpha, stutterOK, err := alphaOf(c, a, ab)
	if err != nil {
		rep.Verdict = fail(relation, err.Error(), nil, nil)
		return rep, nil
	}

	badState := func(s int) bool {
		return legit != nil && !legit.Has(alpha.Of(s))
	}
	badEdge := func(s, t int) bool {
		as, at := alpha.Of(s), alpha.Of(t)
		if a.HasTransition(as, at) {
			return false
		}
		return !(stutterOK && as == at)
	}

	// Violation 1: bad terminals.
	for s := 0; s < c.NumStates(); s++ {
		if err := g.Tick(1); err != nil {
			return nil, err
		}
		if !c.Terminal(s) {
			continue
		}
		as := alpha.Of(s)
		if !a.Terminal(as) || badState(s) {
			rep.Verdict = fail(relation,
				fmt.Sprintf("the one-state computation at terminal %s has no valid suffix: α-image %s is %s",
					c.StateString(s), a.StateString(as), describeBadAnchor(a, as, legit)),
				[]int{s}, nil)
			return rep, nil
		}
	}

	// Violations 2: bad states / bad steps on cycles. An edge (s, t) lies
	// on a cycle iff s and t share an SCC; a state lies on a cycle iff its
	// SCC is cyclic.
	_, comp, err := mc.SCCsGas(g, c, nil)
	if err != nil {
		return nil, err
	}
	cyclic := cyclicComponents(c, comp)
	for s := 0; s < c.NumStates(); s++ {
		if err := g.Tick(1); err != nil {
			return nil, err
		}
		if badState(s) && cyclic[comp[s]] {
			cyc, err := cycleThrough(g, c, comp, s)
			if err != nil {
				return nil, err
			}
			rep.Verdict = fail(relation,
				fmt.Sprintf("state %s (α-image outside %s's reachable region) lies on a cycle: a computation revisits it forever and no suffix escapes it",
					c.StateString(s), a.Name()),
				[]int{s}, cyc)
			return rep, nil
		}
		for _, t := range c.Succ(s) {
			if badEdge(s, t) && comp[s] == comp[t] {
				cyc, err := cycleThrough(g, c, comp, s)
				if err != nil {
					return nil, err
				}
				rep.Verdict = fail(relation,
					fmt.Sprintf("step %s → %s does not track %s and lies on a cycle: a computation incurs it infinitely often",
						c.StateString(s), c.StateString(t), a.Name()),
					[]int{s, t}, cyc)
				return rep, nil
			}
		}
	}

	// Violation 3: pure-stutter divergence.
	if stutterOK {
		v, bad, err := checkStutterCycles(g, relation, c, a, alpha, bitset.Full(c.NumStates()))
		if err != nil {
			return nil, err
		}
		if bad {
			v.Relation = relation
			rep.Verdict = v
			return rep, nil
		}
	}

	// The relation holds. For reporting, the legitimate region is the set
	// of states from which no bad event is reachable: all computations
	// from these states track A (within the legitimate region) forever.
	badCore := bitset.New(c.NumStates())
	for s := 0; s < c.NumStates(); s++ {
		if err := g.Tick(1); err != nil {
			return nil, err
		}
		if badState(s) {
			badCore.Add(s)
			continue
		}
		for _, t := range c.Succ(s) {
			if badEdge(s, t) {
				badCore.Add(s)
				break
			}
		}
	}
	canReachBad, err := mc.CanReachGas(g, c, badCore)
	if err != nil {
		return nil, err
	}
	gset := canReachBad.Complement()
	rep.Legitimate = gset.Members()
	rep.Verdict = ok(relation,
		fmt.Sprintf("every computation has a suffix tracking %s; %d of %d states are legitimate (no bad event reachable)",
			a.Name(), gset.Count(), c.NumStates()))
	return rep, nil
}

// describeBadAnchor explains why an abstract state cannot anchor a valid
// suffix.
func describeBadAnchor(a *system.System, as int, legit *bitset.Set) string {
	if legit != nil && !legit.Has(as) {
		if !a.Terminal(as) {
			return "neither terminal in nor reachable in " + a.Name()
		}
		return "not reachable from the initial states of " + a.Name()
	}
	return "not terminal in " + a.Name()
}

// cyclicComponents marks the SCC indices that contain a cycle (size > 1,
// or a single state with a self-loop).
func cyclicComponents(c *system.System, comp []int) map[int]bool {
	size := make(map[int]int)
	for _, ci := range comp {
		size[ci]++
	}
	cyclic := make(map[int]bool, len(size))
	for s := 0; s < c.NumStates(); s++ {
		ci := comp[s]
		if size[ci] > 1 || c.HasTransition(s, s) {
			if size[ci] > 1 {
				cyclic[ci] = true
			} else if c.HasTransition(s, s) {
				cyclic[ci] = true
			}
		}
	}
	return cyclic
}

// cycleThrough extracts a cycle inside s's component, for witness display.
func cycleThrough(g *mc.Gas, c *system.System, comp []int, s int) ([]int, error) {
	members := bitset.New(c.NumStates())
	for t := 0; t < c.NumStates(); t++ {
		if comp[t] == comp[s] {
			members.Add(t)
		}
	}
	cyc, err := mc.FindCycleWithinGas(g, c, members)
	if err != nil {
		return nil, err
	}
	if cyc != nil {
		return cyc.States, nil
	}
	return nil, nil
}
