package core

import (
	"strings"
	"testing"

	"repro/internal/system"
)

// tinyTokenWorld builds a miniature of the paper's Section 3 setup over a
// shared state space: an abstract system A whose legitimate behavior
// alternates 0 ↔ 1, a wrapper W recovering fault states {2, 3} back into
// the legitimate cycle, and a concrete system C that compresses part of
// A's legitimate behavior. All over 4 states.
func tinyTokenWorld() (a, w, c, wPrime *system.System) {
	ab := system.NewBuilder("A", 4)
	ab.AddTransition(0, 1)
	ab.AddTransition(1, 0)
	ab.AddInit(0)
	a = ab.Build()

	wb := system.NewBuilder("W", 4)
	wb.AddTransition(3, 2)
	wb.AddTransition(2, 0)
	w = wb.Build()

	// C equals A on legitimate states; no extra behavior. (A compression
	// inside the two-state legitimate cycle would lie on a cycle, so here
	// C ⪯ A holds with zero compressions.)
	cbuild := system.NewBuilder("C", 4)
	cbuild.AddTransition(0, 1)
	cbuild.AddTransition(1, 0)
	cbuild.AddInit(0)
	c = cbuild.Build()

	// W' compresses W's recovery path 3→2→0 into a single step 3→0 and
	// keeps 2→0.
	wpb := system.NewBuilder("W'", 4)
	wpb.AddTransition(3, 0)
	wpb.AddTransition(2, 0)
	wPrime = wpb.Build()
	return a, w, c, wPrime
}

func TestWrapperMakesAStabilizing(t *testing.T) {
	a, w, _, _ := tinyTokenWorld()
	if rep := SelfStabilizing(a); rep.Holds {
		t.Fatalf("A alone must not be stabilizing (states 2,3 dead): %s", rep.Verdict)
	}
	wrapped := system.Box(a, w)
	if rep := Stabilizing(wrapped, a, nil); !rep.Holds {
		t.Fatalf("(A [] W) stabilizing to A: %s", rep.Verdict)
	}
}

func TestTheorem1Instance(t *testing.T) {
	a, w, c, _ := tinyTokenWorld()
	// Use (C [] W) ⪯ (A [] W) and (A [] W) stabilizing to A.
	cw := system.Box(c, w)
	aw := system.Box(a, w)
	tc, err := Theorem1(cw, aw, a, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tc.Refuted() {
		t.Fatalf("Theorem 1 refuted:\n%s", tc)
	}
	if !tc.Witnessed() {
		t.Fatalf("Theorem 1 instance vacuous:\n%s", tc)
	}
}

func TestTheorem3Instance(t *testing.T) {
	a, w, c, _ := tinyTokenWorld()
	tc := Theorem3(c, a, w)
	if tc.Refuted() {
		t.Fatalf("Theorem 3 refuted:\n%s", tc)
	}
	if !tc.Witnessed() {
		t.Fatalf("Theorem 3 instance vacuous:\n%s", tc)
	}
}

func TestTheorem5Instance(t *testing.T) {
	a, w, c, wPrime := tinyTokenWorld()
	// Hypothesis [W' ⪯ W] holds: 3→0 compresses W's 3→2→0.
	tc := Theorem5(c, a, w, wPrime)
	if tc.Refuted() {
		t.Fatalf("Theorem 5 refuted:\n%s", tc)
	}
	if !tc.Witnessed() {
		t.Fatalf("Theorem 5 instance vacuous:\n%s", tc)
	}
}

func TestTheorem5CatchesBadWrapper(t *testing.T) {
	a, w, c, _ := tinyTokenWorld()
	// A wrapper that recovers along a path W never uses is NOT a
	// convergence refinement of W; the theorem gives no guarantee, and the
	// check reports the instance as vacuous, not refuted.
	wb := system.NewBuilder("Wbad", 4)
	wb.AddTransition(3, 1) // W recovers 3→2→0; this goes 3→1
	wb.AddTransition(2, 0)
	wBad := wb.Build()
	tc := Theorem5(c, a, w, wBad)
	if tc.HypothesesHold() {
		t.Fatalf("[Wbad ⪯ W] should fail:\n%s", tc)
	}
	if tc.Refuted() {
		t.Fatalf("vacuous instance misreported as refuted:\n%s", tc)
	}
}

func TestTheoremCheckString(t *testing.T) {
	a, w, c, _ := tinyTokenWorld()
	tc := Theorem3(c, a, w)
	s := tc.String()
	for _, want := range []string{"Theorem 3", "hypothesis:", "conclusion:", "witnessed"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestComposeAbstractions(t *testing.T) {
	abCA, err := system.NewAbstraction(8, 4, func(s int) int { return s / 2 })
	if err != nil {
		t.Fatal(err)
	}
	abAB, err := system.NewAbstraction(4, 2, func(s int) int { return s / 2 })
	if err != nil {
		t.Fatal(err)
	}
	// Dummy systems just for size checking.
	c := line("C", 8)
	a := line("A", 4)
	b := line("B", 2)
	composed, err := Compose(abCA, abAB, c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if composed.Of(7) != 1 || composed.Of(0) != 0 || composed.Of(3) != 0 {
		t.Fatalf("composition wrong: %d %d %d", composed.Of(7), composed.Of(0), composed.Of(3))
	}

	// Identity composition requires matching endpoint sizes.
	if _, err := Compose(nil, nil, c, a, b); err == nil {
		t.Fatal("mismatched identity composition accepted")
	}
	got, err := Compose(nil, nil, line("X", 2), a, b)
	if err != nil || got != nil {
		t.Fatalf("identity∘identity = %v, %v", got, err)
	}
	// One-sided identities.
	if _, err := Compose(nil, abAB, c, a, b); err == nil {
		t.Fatal("α identity with |C| ≠ |A| accepted")
	}
	one, err := Compose(nil, abAB, a, a, b)
	if err != nil || one != abAB {
		t.Fatalf("identity∘β: %v, %v", one, err)
	}
	two, err := Compose(abCA, nil, c, a, a)
	if err != nil || two != abCA {
		t.Fatalf("α∘identity: %v, %v", two, err)
	}
	// Shape mismatch.
	if _, err := Compose(abAB, abCA, b, a, c); err == nil {
		t.Fatal("non-composable shapes accepted")
	}
}

func TestFig1RequiresMinimumSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Fig1(2)
}
