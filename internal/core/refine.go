package core

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/mc"
	"repro/internal/system"
)

// alphaOf normalizes the optional abstraction: nil means the identity on a
// shared state space, with strict (stutter-free) semantics.
func alphaOf(c, a *system.System, ab *system.Abstraction) (*system.Abstraction, bool, error) {
	if ab == nil {
		if c.NumStates() != a.NumStates() {
			return nil, false, fmt.Errorf("core: %q and %q have different state spaces (%d vs %d) and no abstraction was given",
				c.Name(), a.Name(), c.NumStates(), a.NumStates())
		}
		return system.Identity(c.NumStates()), false, nil
	}
	if ab.NumConcrete() != c.NumStates() || ab.NumAbstract() != a.NumStates() {
		return nil, false, fmt.Errorf("core: abstraction shape (%d→%d) does not match systems (%d→%d)",
			ab.NumConcrete(), ab.NumAbstract(), c.NumStates(), a.NumStates())
	}
	return ab, true, nil
}

// RefinementInit decides [C ⊑ A]_init: every computation of C that starts
// from an initial state of C is a computation of A. With an abstraction,
// the destuttered α-image of every such computation must be a computation
// of A. ab may be nil when C and A share a state space.
func RefinementInit(c, a *system.System, ab *system.Abstraction) Verdict {
	v, _ := RefinementInitGas(nil, c, a, ab)
	return v
}

// RefinementInitGas is RefinementInit under a meter: the sweeps tick g and
// the check aborts with g's error (cancellation or budget exhaustion)
// instead of running to completion.
func RefinementInitGas(g *mc.Gas, c, a *system.System, ab *system.Abstraction) (Verdict, error) {
	relation := fmt.Sprintf("[%s ⊑ %s]_init", c.Name(), a.Name())
	alpha, stutterOK, err := alphaOf(c, a, ab)
	if err != nil {
		return fail(relation, err.Error(), nil, nil), nil
	}
	region, err := mc.ReachFromInitGas(g, c)
	if err != nil {
		return Verdict{}, err
	}
	return refinementOver(g, relation, c, a, alpha, stutterOK, region)
}

// EverywhereRefinement decides [C ⊑ A]: every computation of C (from any
// state) is a computation of A. This is the relation of Theorem 0 (from
// the authors' "Graybox stabilization" paper) restated in Section 2.1.
func EverywhereRefinement(c, a *system.System, ab *system.Abstraction) Verdict {
	v, _ := EverywhereRefinementGas(nil, c, a, ab)
	return v
}

// EverywhereRefinementGas is EverywhereRefinement under a meter.
func EverywhereRefinementGas(g *mc.Gas, c, a *system.System, ab *system.Abstraction) (Verdict, error) {
	relation := fmt.Sprintf("[%s ⊑ %s]", c.Name(), a.Name())
	alpha, stutterOK, err := alphaOf(c, a, ab)
	if err != nil {
		return fail(relation, err.Error(), nil, nil), nil
	}
	return refinementOver(g, relation, c, a, alpha, stutterOK, bitset.Full(c.NumStates()))
}

// refinementOver checks that, over the given region of concrete states,
// every C-step maps to an A-step (or a stutter, when permitted), every
// C-terminal state maps to an A-terminal state, and no cycle of pure
// stutter steps maps to a non-terminal abstract state. On finite automata
// this is exactly computation-set inclusion over the region: every path
// extends to a maximal one, so a single offending step/terminal yields a
// counterexample computation, and conversely.
func refinementOver(g *mc.Gas, relation string, c, a *system.System, alpha *system.Abstraction, stutterOK bool, region *bitset.Set) (Verdict, error) {
	var stutters, exact int
	var badEdge [2]int
	var badTerm = -1
	var gasErr error
	foundBadEdge := false
	region.ForEach(func(s int) {
		if foundBadEdge || badTerm >= 0 || gasErr != nil {
			return
		}
		if gasErr = g.Tick(1); gasErr != nil {
			return
		}
		as := alpha.Of(s)
		if c.Terminal(s) {
			if !a.Terminal(as) {
				badTerm = s
			}
			return
		}
		for _, t := range c.Succ(s) {
			if gasErr = g.Tick(1); gasErr != nil {
				return
			}
			at := alpha.Of(t)
			if as == at {
				if stutterOK {
					stutters++
					continue
				}
				// Identity semantics: a self-loop must itself be in T_A.
				if a.HasTransition(as, at) {
					exact++
					continue
				}
				badEdge = [2]int{s, t}
				foundBadEdge = true
				return
			}
			if a.HasTransition(as, at) {
				exact++
				continue
			}
			badEdge = [2]int{s, t}
			foundBadEdge = true
			return
		}
	})
	if gasErr != nil {
		return Verdict{}, gasErr
	}
	if foundBadEdge {
		witness, err := witnessTo(g, c, region, badEdge[0])
		if err != nil {
			return Verdict{}, err
		}
		witness = append(witness, badEdge[1])
		return fail(relation,
			fmt.Sprintf("concrete step %s → %s maps to a non-transition of %s",
				c.StateString(badEdge[0]), c.StateString(badEdge[1]), a.Name()),
			witness, nil), nil
	}
	if badTerm >= 0 {
		witness, err := witnessTo(g, c, region, badTerm)
		if err != nil {
			return Verdict{}, err
		}
		return fail(relation,
			fmt.Sprintf("concrete computation terminates at %s but α-image %s is not terminal in %s",
				c.StateString(badTerm), a.StateString(alpha.Of(badTerm)), a.Name()),
			witness, nil), nil
	}
	if stutterOK {
		v, bad, err := checkStutterCycles(g, relation, c, a, alpha, region)
		if err != nil {
			return Verdict{}, err
		}
		if bad {
			return v, nil
		}
	}
	return ok(relation, fmt.Sprintf("every computation over %d states tracks %s (%d exact steps, %d stutters)",
		region.Count(), a.Name(), exact, stutters)), nil
}

// checkStutterCycles rejects cycles of C inside region consisting solely of
// stutter steps whose (single) abstract image is not A-terminal: such a
// cycle sustains an infinite concrete computation whose destuttered image
// is a finite, non-maximal abstract sequence — not a computation of A.
// Steps whose image (a, a) is itself a transition of A are not stutters:
// they realize A's own self-loop, and a cycle of them tracks an infinite
// A-computation.
func checkStutterCycles(g *mc.Gas, relation string, c, a *system.System, alpha *system.Abstraction, region *bitset.Set) (Verdict, bool, error) {
	// Build the stutter subgraph restricted to region.
	b := system.NewBuilder("stutter", c.NumStates())
	any := false
	var gasErr error
	region.ForEach(func(s int) {
		if gasErr != nil {
			return
		}
		if gasErr = g.Tick(1); gasErr != nil {
			return
		}
		as := alpha.Of(s)
		if a.HasTransition(as, as) {
			return
		}
		for _, t := range c.Succ(s) {
			if region.Has(t) && alpha.Of(t) == as {
				b.AddTransition(s, t)
				any = true
			}
		}
	})
	if gasErr != nil {
		return Verdict{}, false, gasErr
	}
	if !any {
		return Verdict{}, false, nil
	}
	sub := b.Build()
	cyc, err := mc.FindCycleWithinGas(g, sub, region)
	if err != nil {
		return Verdict{}, false, err
	}
	if cyc != nil {
		img := alpha.Of(cyc.States[0])
		if !a.Terminal(img) {
			witness, err := witnessTo(g, c, region, cyc.States[0])
			if err != nil {
				return Verdict{}, false, err
			}
			return fail(relation,
				fmt.Sprintf("pure-stutter cycle at abstract state %s, which is not terminal in %s: the destuttered image of the looping computation is not maximal",
					a.StateString(img), a.Name()),
				witness, cyc.States), true, nil
		}
	}
	return Verdict{}, false, nil
}

// witnessTo returns a short path inside the region ending at target. When
// the region is C's from-init reachable set, the path starts at an initial
// state; otherwise the target itself is a legal computation start, so the
// one-state path suffices — but a from-init prefix is more readable when
// one exists.
func witnessTo(g *mc.Gas, c *system.System, region *bitset.Set, target int) ([]int, error) {
	p, err := mc.PathFromInitGas(g, c, target)
	if err != nil {
		return nil, err
	}
	if p != nil {
		return p, nil
	}
	return []int{target}, nil
}
