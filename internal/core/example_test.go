package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/system"
)

// ExampleStabilizing shows the stabilization checker on a two-state
// system with a recovery edge.
func ExampleStabilizing() {
	// A: the legitimate alternation 0 ↔ 1; state 2 is unknown to A.
	ab := system.NewBuilder("A", 3)
	ab.AddTransition(0, 1)
	ab.AddTransition(1, 0)
	ab.AddInit(0)
	a := ab.Build()

	// C adds a recovery edge from the fault state 2 back into the cycle.
	cb := system.NewBuilder("C", 3)
	cb.AddTransition(0, 1)
	cb.AddTransition(1, 0)
	cb.AddTransition(2, 0)
	cb.AddInit(0)
	c := cb.Build()

	rep := core.Stabilizing(c, a, nil)
	fmt.Println(rep.Holds)
	fmt.Println(len(rep.Legitimate))
	// Output:
	// true
	// 2
}

// ExampleConvergenceRefinement shows a compression: C jumps over one of
// A's recovery states, which the relation allows (a convergence
// isomorphism drops states) as long as the endpoints agree and the jump
// is not repeatable forever.
func ExampleConvergenceRefinement() {
	ab := system.NewBuilder("A", 4)
	ab.AddTransition(0, 0) // legitimate self-loop
	ab.AddTransition(2, 1) // recovery: 2 → 1 → 0
	ab.AddTransition(1, 0)
	ab.AddInit(0)
	a := ab.Build()

	cb := system.NewBuilder("C", 4)
	cb.AddTransition(0, 0)
	cb.AddTransition(2, 0) // compressed recovery
	cb.AddTransition(1, 0)
	cb.AddInit(0)
	c := cb.Build()

	rep := core.ConvergenceRefinement(c, a, nil)
	fmt.Println(rep.Holds)
	for _, cp := range rep.Compressions {
		fmt.Printf("s%d → s%d omits %d state(s)\n", cp.From, cp.To, cp.Omissions)
	}
	// Output:
	// true
	// s2 → s0 omits 1 state(s)
}

// ExampleVerdict_FormatWitness shows counterexample rendering.
func ExampleVerdict_FormatWitness() {
	a, c := core.Fig1(4)
	rep := core.Stabilizing(c, a, nil)
	fmt.Println(rep.Holds)
	fmt.Println(rep.FormatWitness(c))
	// Output:
	// false
	// s4
}
