package core

import (
	"strings"
	"testing"

	"repro/internal/system"
)

func TestConvergenceRefinementExactStepsOnly(t *testing.T) {
	a := line("A", 4)
	c := line("C", 4)
	rep := ConvergenceRefinement(c, a, nil)
	if !rep.Holds {
		t.Fatalf("identical systems: %s", rep.Verdict)
	}
	if len(rep.Compressions) != 0 || rep.ExactEdges != 3 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestConvergenceRefinementWithCompression(t *testing.T) {
	// A: 0→1→2→3 terminal; C compresses 0→2 in one step, matches A at 1.
	a := line("A", 4)
	cb := system.NewBuilder("C", 4)
	cb.AddTransition(0, 2)
	cb.AddTransition(1, 2)
	cb.AddTransition(2, 3)
	cb.AddInit(0)
	c := cb.Build()

	// Note: [C ⊑ A]_init fails here (C's from-init computation 0,2,3 is
	// not a computation of A). The paper's C1 keeps the initial behavior
	// identical and compresses only outside; model that by also giving C
	// the exact step 0→1 — from init, C may still choose 0→2, so keep
	// init at a state where compression is unreachable.
	cb2 := system.NewBuilder("C2", 5)
	cb2.AddTransition(0, 1)
	cb2.AddTransition(1, 2)
	cb2.AddTransition(2, 3)
	cb2.AddTransition(4, 2) // fault state 4 compresses over A's path 4→1→2? build A2 accordingly
	cb2.AddInit(0)
	ab2 := system.NewBuilder("A2", 5)
	ab2.AddTransition(0, 1)
	ab2.AddTransition(1, 2)
	ab2.AddTransition(2, 3)
	ab2.AddTransition(4, 1) // A recovers 4→1, then 1→2
	ab2.AddInit(0)
	a2, c2 := ab2.Build(), cb2.Build()

	rep := ConvergenceRefinement(c2, a2, nil)
	if !rep.Holds {
		t.Fatalf("compressing refinement rejected: %s", rep.Verdict)
	}
	if len(rep.Compressions) != 1 {
		t.Fatalf("compressions = %+v", rep.Compressions)
	}
	cp := rep.Compressions[0]
	if cp.From != 4 || cp.To != 2 || cp.Omissions != 1 {
		t.Fatalf("compression = %+v", cp)
	}
	if len(cp.Cover) != 3 || cp.Cover[0] != 4 || cp.Cover[1] != 1 || cp.Cover[2] != 2 {
		t.Fatalf("cover = %v", cp.Cover)
	}
	_ = a
	_ = c
}

func TestConvergenceRefinementNoCover(t *testing.T) {
	// C jumps 0→3 but A has no path 0→…→3.
	ab := system.NewBuilder("A", 4)
	ab.AddTransition(0, 1)
	ab.AddTransition(3, 1)
	ab.AddInit(0)
	cb := system.NewBuilder("C", 4)
	cb.AddTransition(0, 1)
	cb.AddTransition(3, 1)
	cb.AddTransition(2, 3) // A has no transition/path 2→3
	cb.AddInit(0)
	rep := ConvergenceRefinement(cb.Build(), ab.Build(), nil)
	if rep.Holds {
		t.Fatalf("uncoverable step accepted: %s", rep.Verdict)
	}
	if !strings.Contains(rep.Reason, "covering path") {
		t.Fatalf("reason = %q", rep.Reason)
	}
}

func TestConvergenceRefinementCompressionOnCycleRejected(t *testing.T) {
	// Legitimate behavior (states 0,1) is identical; the fault region
	// cycles in A as 2→3→4→2 and in C as 2→4→2, so C's compression 2→4
	// lies on a cycle of C: omissions would be infinite.
	ab := system.NewBuilder("A", 5)
	ab.AddTransition(0, 1)
	ab.AddTransition(1, 0)
	ab.AddTransition(2, 3)
	ab.AddTransition(3, 4)
	ab.AddTransition(4, 2)
	ab.AddInit(0)
	cb := system.NewBuilder("C", 5)
	cb.AddTransition(0, 1)
	cb.AddTransition(1, 0)
	cb.AddTransition(2, 4)
	cb.AddTransition(4, 2)
	cb.AddTransition(3, 4)
	cb.AddInit(0)
	rep := ConvergenceRefinement(cb.Build(), ab.Build(), nil)
	if rep.Holds {
		t.Fatalf("cyclic compression accepted: %s", rep.Verdict)
	}
	if !strings.Contains(rep.Reason, "cycle") {
		t.Fatalf("reason = %q", rep.Reason)
	}
}

func TestConvergenceRefinementTerminalMismatch(t *testing.T) {
	a := line("A", 3)
	cb := system.NewBuilder("C", 3)
	cb.AddTransition(0, 1)
	// state 2 would be fine; state 1 is terminal in C but not in A.
	cb.AddInit(0)
	rep := ConvergenceRefinement(cb.Build(), a, nil)
	if rep.Holds {
		t.Fatalf("terminal mismatch accepted: %s", rep.Verdict)
	}
}

func TestConvergenceRefinementEmbedsInitRefinement(t *testing.T) {
	// C diverges from init: 0→2 while A only has 0→1.
	a := line("A", 3)
	cb := system.NewBuilder("C", 3)
	cb.AddTransition(0, 2)
	cb.AddTransition(1, 2)
	cb.AddInit(0)
	rep := ConvergenceRefinement(cb.Build(), a, nil)
	if rep.Holds {
		t.Fatal("init divergence accepted")
	}
	if rep.RefinementInit.Holds {
		t.Fatal("embedded init refinement should have failed")
	}
}

func TestConvergenceStutterViaAbstraction(t *testing.T) {
	// The C3 situation in miniature: C makes a τ step (same abstract
	// image) before the abstract step; no compression occurs.
	ab := system.NewBuilder("A", 2)
	ab.AddTransition(0, 1)
	ab.AddInit(0)
	a := ab.Build()
	cb := system.NewBuilder("C", 4) // 0,1 ↦ 0; 2,3 ↦ 1
	cb.AddTransition(0, 1)          // τ
	cb.AddTransition(1, 2)          // abstract 0→1
	cb.AddTransition(2, 3)          // τ at terminal image — but 3 must terminate
	cb.AddInit(0)
	c := cb.Build()
	alpha, err := system.NewAbstraction(4, 2, func(s int) int { return s / 2 })
	if err != nil {
		t.Fatal(err)
	}
	rep := ConvergenceRefinement(c, a, alpha)
	if !rep.Holds {
		t.Fatalf("stuttering convergence refinement rejected: %s", rep.Verdict)
	}
	if rep.StutterEdges != 2 || len(rep.Compressions) != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestFig1Claims(t *testing.T) {
	a, c := Fig1(6)
	// The paper's Figure 1: [C ⊑ A]_init holds …
	if v := RefinementInit(c, a, nil); !v.Holds {
		t.Fatalf("[C ⊑ A]_init: %s", v)
	}
	// … A is stabilizing to A …
	if v := SelfStabilizing(a); !v.Holds {
		t.Fatalf("A self-stabilizing: %s", v.Verdict)
	}
	// … but C is not stabilizing to A (it halts at s*).
	if v := Stabilizing(c, a, nil); v.Holds {
		t.Fatalf("C must not be stabilizing to A: %s", v.Verdict)
	}
	// And accordingly C is not an everywhere refinement (s* is terminal
	// in C, not in A) nor a convergence refinement of A.
	if v := EverywhereRefinement(c, a, nil); v.Holds {
		t.Fatalf("[C ⊑ A]: %s", v)
	}
	if rep := ConvergenceRefinement(c, a, nil); rep.Holds {
		t.Fatalf("[C ⪯ A]: %s", rep.Verdict)
	}
}

func TestOddEvenSeparatesRelations(t *testing.T) {
	a, c := OddEvenRecovery()
	// C is an everywhere-eventually refinement of A …
	if v := EverywhereEventuallyRefinement(c, a, nil); !v.Holds {
		t.Fatalf("[C ⊑ee A]: %s", v)
	}
	// … but not a convergence refinement (recovery via even states is not
	// a subsequence of A's odd recovery path).
	if rep := ConvergenceRefinement(c, a, nil); rep.Holds {
		t.Fatalf("[C ⪯ A] must fail: %s", rep.Verdict)
	}
	// And of course not an everywhere refinement either.
	if v := EverywhereRefinement(c, a, nil); v.Holds {
		t.Fatalf("[C ⊑ A] must fail: %s", v)
	}
}

func TestHierarchyEverywhereImpliesConvergence(t *testing.T) {
	// [C ⊑ A] ⇒ [C ⪯ A] (Section 2): any everywhere refinement passes the
	// convergence check with zero compressions.
	a := line("A", 5)
	cb := system.NewBuilder("C", 5)
	cb.AddTransition(0, 1)
	cb.AddTransition(1, 2)
	cb.AddTransition(2, 3)
	cb.AddTransition(3, 4)
	cb.AddInit(0)
	c := cb.Build()
	if v := EverywhereRefinement(c, a, nil); !v.Holds {
		t.Fatalf("[C ⊑ A]: %s", v)
	}
	rep := ConvergenceRefinement(c, a, nil)
	if !rep.Holds || len(rep.Compressions) != 0 {
		t.Fatalf("[C ⪯ A]: %s, compressions %v", rep.Verdict, rep.Compressions)
	}
}
