package core

import (
	"strings"
	"testing"

	"repro/internal/system"
)

// ringAB builds a two-state specification that alternates 0 ↔ 1 with init
// {0}: every state is reachable and every computation is infinite.
func ringAB(name string) *system.System {
	b := system.NewBuilder(name, 2)
	b.AddTransition(0, 1)
	b.AddTransition(1, 0)
	b.AddInit(0)
	return b.Build()
}

func TestSelfStabilizingAlternator(t *testing.T) {
	a := ringAB("A")
	rep := SelfStabilizing(a)
	if !rep.Holds {
		t.Fatalf("alternator not self-stabilizing: %s", rep.Verdict)
	}
	if len(rep.Legitimate) != 2 || rep.ReachableLegit != 2 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestNotSelfStabilizingWhenFaultStateTraps(t *testing.T) {
	// State 2 is a trap outside A's reachable region.
	b := system.NewBuilder("A", 3)
	b.AddTransition(0, 1)
	b.AddTransition(1, 0)
	b.AddTransition(2, 2)
	b.AddInit(0)
	a := b.Build()
	rep := SelfStabilizing(a)
	if rep.Holds {
		t.Fatalf("trapping system reported stabilizing: %s", rep.Verdict)
	}
	if !strings.Contains(rep.Reason, "cycle") {
		t.Fatalf("reason = %q", rep.Reason)
	}
}

func TestStabilizingConvergesFromEverywhere(t *testing.T) {
	// C adds recovery edges from fault states 2,3 into the legit cycle.
	cb := system.NewBuilder("C", 4)
	cb.AddTransition(0, 1)
	cb.AddTransition(1, 0)
	cb.AddTransition(2, 0)
	cb.AddTransition(3, 2)
	cb.AddInit(0)
	ab := system.NewBuilder("A", 4)
	ab.AddTransition(0, 1)
	ab.AddTransition(1, 0)
	ab.AddInit(0)
	rep := Stabilizing(cb.Build(), ab.Build(), nil)
	if !rep.Holds {
		t.Fatalf("recovering system rejected: %s", rep.Verdict)
	}
	// Legitimate region: exactly the states with no reachable bad event
	// — the recovery edges (2,0),(3,2) are bad events, so only {0,1}.
	if len(rep.Legitimate) != 2 || rep.Legitimate[0] != 0 || rep.Legitimate[1] != 1 {
		t.Fatalf("legitimate = %v", rep.Legitimate)
	}
}

func TestStabilizingBadTerminal(t *testing.T) {
	cb := system.NewBuilder("C", 3)
	cb.AddTransition(0, 1)
	cb.AddTransition(1, 0)
	// state 2 terminal in C.
	cb.AddInit(0)
	ab := system.NewBuilder("A", 3)
	ab.AddTransition(0, 1)
	ab.AddTransition(1, 0)
	ab.AddInit(0)
	rep := Stabilizing(cb.Build(), ab.Build(), nil)
	if rep.Holds {
		t.Fatalf("dead terminal accepted: %s", rep.Verdict)
	}
	if !strings.Contains(rep.Reason, "terminal") {
		t.Fatalf("reason = %q", rep.Reason)
	}
}

func TestStabilizingFiniteBadEventsAccepted(t *testing.T) {
	// The key distinction from the naive closed-region check: state 0 is
	// on a legitimate cycle AND has a one-shot escape edge 0→2 that is not
	// an A-transition; from 2 the system rejoins legitimacy via an
	// A-transition 2→0? No — (2,0) must be an A transition for the suffix
	// to be valid. Give A the edge 2→0 but make 2 unreachable in A:
	// then α(2)=2 is outside A's reachable region, a bad state — but it is
	// not on a cycle, so computations pass through it at most once.
	ab := system.NewBuilder("A", 3)
	ab.AddTransition(0, 1)
	ab.AddTransition(1, 0)
	ab.AddTransition(2, 0) // present in A, but 2 unreachable from init
	ab.AddInit(0)
	a := ab.Build()

	cb := system.NewBuilder("C", 3)
	cb.AddTransition(0, 1)
	cb.AddTransition(1, 0)
	cb.AddTransition(0, 2) // bad step, traversed at most once (2 cannot return… it can: 2→0!)
	cb.AddTransition(2, 0)
	cb.AddInit(0)
	c := cb.Build()

	// Here 0→2→0 IS a cycle of C containing the bad step (0,2) (bad since
	// (0,2) ∉ T_A) — so this must be rejected.
	rep := Stabilizing(c, a, nil)
	if rep.Holds {
		t.Fatalf("infinitely repeatable bad step accepted: %s", rep.Verdict)
	}

	// Remove the return edge: now the bad step 0→2 is not on any cycle,
	// and from 2 the computation halts… 2 must not be terminal-bad. Give
	// 2 a transition to 1 in both systems, reachable only via the fault.
	ab2 := system.NewBuilder("A2", 3)
	ab2.AddTransition(0, 1)
	ab2.AddTransition(1, 0)
	ab2.AddTransition(2, 1) // in A, 2 recovers to 1; 2 unreachable from init
	ab2.AddInit(0)
	cb2 := system.NewBuilder("C2", 3)
	cb2.AddTransition(0, 1)
	cb2.AddTransition(1, 0)
	cb2.AddTransition(2, 1)
	cb2.AddInit(0)
	rep2 := Stabilizing(cb2.Build(), ab2.Build(), nil)
	if !rep2.Holds {
		t.Fatalf("finitely many bad events rejected: %s", rep2.Verdict)
	}
	// 2 is a bad state (not A-reachable) but off-cycle: it is excluded
	// from the legitimate region yet does not break stabilization.
	if len(rep2.Legitimate) != 2 {
		t.Fatalf("legitimate = %v", rep2.Legitimate)
	}
}

func TestStabilizingWithAbstractionAndStutter(t *testing.T) {
	// Concrete pairs {0,1}↦0, {2,3}↦1; abstract alternator. C stutters
	// inside each pair and steps across pairs; every computation keeps
	// alternating at the abstract level.
	ab := system.NewBuilder("A", 2)
	ab.AddTransition(0, 1)
	ab.AddTransition(1, 0)
	ab.AddInit(0)
	a := ab.Build()

	cb := system.NewBuilder("C", 4)
	cb.AddTransition(0, 1) // τ
	cb.AddTransition(1, 2) // 0→1 abstract
	cb.AddTransition(2, 3) // τ
	cb.AddTransition(3, 0) // 1→0 abstract
	cb.AddInit(0)
	c := cb.Build()

	alpha, err := system.NewAbstraction(4, 2, func(s int) int { return s / 2 })
	if err != nil {
		t.Fatal(err)
	}
	rep := Stabilizing(c, a, alpha)
	if !rep.Holds {
		t.Fatalf("stuttering stabilization rejected: %s", rep.Verdict)
	}
	if len(rep.Legitimate) != 4 {
		t.Fatalf("legitimate = %v", rep.Legitimate)
	}
}

func TestStabilizingRejectsStutterDivergence(t *testing.T) {
	// C can loop forever inside the pair mapping to abstract 0 (non-
	// terminal): destuttered image stalls.
	ab := system.NewBuilder("A", 2)
	ab.AddTransition(0, 1)
	ab.AddTransition(1, 0)
	ab.AddInit(0)
	cb := system.NewBuilder("C", 4)
	cb.AddTransition(0, 1)
	cb.AddTransition(1, 0) // pure stutter cycle in pair {0,1}
	cb.AddTransition(1, 2)
	cb.AddTransition(2, 3)
	cb.AddTransition(3, 0)
	cb.AddInit(0)
	alpha, err := system.NewAbstraction(4, 2, func(s int) int { return s / 2 })
	if err != nil {
		t.Fatal(err)
	}
	rep := Stabilizing(cb.Build(), ab.Build(), alpha)
	if rep.Holds {
		t.Fatalf("stutter divergence accepted: %s", rep.Verdict)
	}
}

func TestEverywhereEventuallyBasics(t *testing.T) {
	// Recovery through states unknown to A is fine for ⊑ee as long as it
	// is finite and lands in A-behavior.
	a, c := OddEvenRecovery()
	v := EverywhereEventuallyRefinement(c, a, nil)
	if !v.Holds {
		t.Fatalf("[C ⊑ee A]: %s", v)
	}
	// A bad cycle is not fine.
	cb := system.NewBuilder("C2", 6)
	cb.AddTransition(5, 4)
	cb.AddTransition(4, 5) // loops forever outside A behavior
	cb.AddTransition(0, 0)
	cb.AddInit(0)
	v = EverywhereEventuallyRefinement(cb.Build(), a, nil)
	if v.Holds {
		t.Fatalf("diverging C accepted: %s", v)
	}
}

func TestEverywhereEventuallyRequiresInitRefinement(t *testing.T) {
	a := line("A", 3)
	cb := system.NewBuilder("C", 3)
	cb.AddTransition(0, 2) // diverges immediately from init
	cb.AddTransition(1, 2)
	cb.AddInit(0)
	v := EverywhereEventuallyRefinement(cb.Build(), a, nil)
	if v.Holds {
		t.Fatal("init divergence accepted")
	}
	if !strings.Contains(v.Reason, "init") {
		t.Fatalf("reason = %q", v.Reason)
	}
}

func TestStabilizationHierarchy(t *testing.T) {
	// Everywhere refinement ⊆ convergence refinement ⊆ everywhere-
	// eventually refinement on a recovery example.
	ab := system.NewBuilder("A", 4)
	ab.AddTransition(0, 1)
	ab.AddTransition(1, 0)
	ab.AddTransition(2, 0)
	ab.AddTransition(3, 2)
	ab.AddInit(0)
	a := ab.Build()

	// C compresses A's recovery 3→2→0 into 3→0.
	cb := system.NewBuilder("C", 4)
	cb.AddTransition(0, 1)
	cb.AddTransition(1, 0)
	cb.AddTransition(2, 0)
	cb.AddTransition(3, 0)
	cb.AddInit(0)
	c := cb.Build()

	if v := EverywhereRefinement(c, a, nil); v.Holds {
		t.Fatalf("[C ⊑ A] should fail (3→0 is not an A step): %s", v)
	}
	if rep := ConvergenceRefinement(c, a, nil); !rep.Holds {
		t.Fatalf("[C ⪯ A] should hold: %s", rep.Verdict)
	}
	if v := EverywhereEventuallyRefinement(c, a, nil); !v.Holds {
		t.Fatalf("[C ⊑ee A] should hold: %s", v)
	}
	// And stabilization is preserved (Theorem 1 instance).
	if rep := Stabilizing(c, a, nil); !rep.Holds {
		t.Fatalf("C stabilizing to A: %s", rep.Verdict)
	}
}
