package core

import (
	"strings"
	"testing"

	"repro/internal/system"
)

// line builds a terminal chain 0 → 1 → ... → n-1 with init {0}.
func line(name string, n int) *system.System {
	b := system.NewBuilder(name, n)
	for i := 0; i+1 < n; i++ {
		b.AddTransition(i, i+1)
	}
	b.AddInit(0)
	return b.Build()
}

func TestRefinementInitIdentical(t *testing.T) {
	a := line("A", 4)
	c := line("C", 4)
	v := RefinementInit(c, a, nil)
	if !v.Holds {
		t.Fatalf("identical systems: %s", v)
	}
}

func TestRefinementInitExtraUnreachableEdgeOK(t *testing.T) {
	a := line("A", 4)
	cb := system.NewBuilder("C", 4)
	cb.AddTransition(0, 1)
	cb.AddTransition(1, 2)
	cb.AddTransition(2, 3)
	cb.AddInit(0)
	// Unreachable-from-init transition not in A — init refinement must
	// still hold, everywhere refinement must not.
	// state 3 is reachable; add a divergent edge from an isolated state:
	cb2 := system.NewBuilder("C2", 5)
	cb2.AddTransition(0, 1)
	cb2.AddTransition(1, 2)
	cb2.AddTransition(2, 3)
	cb2.AddTransition(4, 0) // not an A transition; 4 unreachable from init
	cb2.AddInit(0)
	ab2 := system.NewBuilder("A2", 5)
	ab2.AddTransition(0, 1)
	ab2.AddTransition(1, 2)
	ab2.AddTransition(2, 3)
	ab2.AddInit(0)
	_ = cb.Build()
	a2, c2 := ab2.Build(), cb2.Build()
	if v := RefinementInit(c2, a2, nil); !v.Holds {
		t.Fatalf("init refinement should ignore unreachable divergence: %s", v)
	}
	if v := EverywhereRefinement(c2, a2, nil); v.Holds {
		t.Fatalf("everywhere refinement should see the divergence: %s", v)
	}
	_ = a
}

func TestRefinementInitBadEdge(t *testing.T) {
	a := line("A", 4)
	cb := system.NewBuilder("C", 4)
	cb.AddTransition(0, 2) // skips a state: not an A transition
	cb.AddTransition(2, 3)
	cb.AddInit(0)
	v := RefinementInit(cb.Build(), a, nil)
	if v.Holds {
		t.Fatalf("skipping step accepted: %s", v)
	}
	if len(v.Witness) == 0 {
		t.Fatal("no witness for failing refinement")
	}
	if v.Witness[0] != 0 {
		t.Fatalf("witness should start at an initial state: %v", v.Witness)
	}
	if !strings.Contains(v.Reason, "non-transition") {
		t.Fatalf("reason = %q", v.Reason)
	}
}

func TestRefinementTerminalMismatch(t *testing.T) {
	// C stops at state 1; A continues. The finite computation 0,1 of C is
	// not maximal in A, hence not a computation of A.
	a := line("A", 3)
	cb := system.NewBuilder("C", 3)
	cb.AddTransition(0, 1)
	cb.AddInit(0)
	v := RefinementInit(cb.Build(), a, nil)
	if v.Holds {
		t.Fatalf("premature termination accepted: %s", v)
	}
	if !strings.Contains(v.Reason, "terminat") {
		t.Fatalf("reason = %q", v.Reason)
	}
}

func TestRefinementSelfLoopStrictOnSharedSpace(t *testing.T) {
	a := line("A", 2)
	cb := system.NewBuilder("C", 2)
	cb.AddTransition(0, 0) // self-loop not in A
	cb.AddTransition(0, 1)
	cb.AddInit(0)
	if v := RefinementInit(cb.Build(), a, nil); v.Holds {
		t.Fatalf("self-loop accepted without abstraction: %s", v)
	}
}

func TestRefinementStutterAllowedViaAbstraction(t *testing.T) {
	// Concrete: 4 states, pairs {0,1} and {2,3} map to abstract 0 and 1.
	// C: 0→1 (stutter), 1→2 (abstract step), 2→3 (stutter), 3 terminal.
	// A: 0→1, 1 terminal.
	ab := system.NewBuilder("A", 2)
	ab.AddTransition(0, 1)
	ab.AddInit(0)
	a := ab.Build()

	cb := system.NewBuilder("C", 4)
	cb.AddTransition(0, 1)
	cb.AddTransition(1, 2)
	cb.AddTransition(2, 3)
	cb.AddInit(0)
	c := cb.Build()

	alpha, err := system.NewAbstraction(4, 2, func(s int) int { return s / 2 })
	if err != nil {
		t.Fatal(err)
	}
	if v := RefinementInit(c, a, alpha); !v.Holds {
		t.Fatalf("stuttering refinement rejected: %s", v)
	}
	if v := EverywhereRefinement(c, a, alpha); !v.Holds {
		t.Fatalf("stuttering everywhere refinement rejected: %s", v)
	}
}

func TestRefinementStutterCycleRejected(t *testing.T) {
	// C loops forever between two states mapping to abstract 0, which is
	// not terminal in A: the destuttered image "0" is not maximal.
	ab := system.NewBuilder("A", 2)
	ab.AddTransition(0, 1)
	ab.AddInit(0)
	a := ab.Build()

	cb := system.NewBuilder("C", 4)
	cb.AddTransition(0, 1)
	cb.AddTransition(1, 0)
	cb.AddInit(0)
	c := cb.Build()

	alpha, err := system.NewAbstraction(4, 2, func(s int) int { return s / 2 })
	if err != nil {
		t.Fatal(err)
	}
	v := RefinementInit(c, a, alpha)
	if v.Holds {
		t.Fatalf("stutter divergence accepted: %s", v)
	}
	if !strings.Contains(v.Reason, "stutter") {
		t.Fatalf("reason = %q", v.Reason)
	}
}

func TestRefinementStutterCycleAtTerminalImageOK(t *testing.T) {
	// Same shape, but abstract 0 is terminal in A: an infinite concrete
	// stutter at a terminal abstract state destutters to the maximal
	// one-state computation.
	ab := system.NewBuilder("A", 2)
	ab.AddTransition(1, 0)
	ab.AddInit(0)
	a := ab.Build()

	cb := system.NewBuilder("C", 4)
	cb.AddTransition(0, 1)
	cb.AddTransition(1, 0)
	cb.AddInit(0)
	c := cb.Build()

	alpha, err := system.NewAbstraction(4, 2, func(s int) int { return s / 2 })
	if err != nil {
		t.Fatal(err)
	}
	if v := RefinementInit(c, a, alpha); !v.Holds {
		t.Fatalf("terminal-image stutter rejected: %s", v)
	}
}

func TestRefinementSpaceMismatchWithoutAbstraction(t *testing.T) {
	v := RefinementInit(line("C", 3), line("A", 4), nil)
	if v.Holds || !strings.Contains(v.Reason, "state spaces") {
		t.Fatalf("verdict = %s", v)
	}
}

func TestVerdictString(t *testing.T) {
	a := line("A", 3)
	v := RefinementInit(line("C", 3), a, nil)
	s := v.String()
	if !strings.HasPrefix(s, "✓") || !strings.Contains(s, "⊑") {
		t.Fatalf("String = %q", s)
	}
	bad := fail("[X ⊑ Y]", "boom", []int{0, 1}, []int{2})
	if !strings.HasPrefix(bad.String(), "✗") || !strings.Contains(bad.String(), "loop") {
		t.Fatalf("String = %q", bad.String())
	}
	fw := bad.FormatWitness(a)
	if !strings.Contains(fw, "s0 → s1") || !strings.Contains(fw, "loop: s2") {
		t.Fatalf("FormatWitness = %q", fw)
	}
	if got := (Verdict{Holds: true}).FormatWitness(a); got != "" {
		t.Fatalf("FormatWitness on pass = %q", got)
	}
}
