package core

import (
	"math/rand"
	"testing"

	"repro/internal/system"
)

// randomStabilizingSpec builds a random self-stabilizing specification:
// a strongly-connected "legitimate core" of size coreN (a cycle plus
// random chords) holding the initial states, and recoverN fault states
// arranged as a DAG that drains into the core. Every state has an
// outgoing transition; every computation reaches the core and cycles
// there, so the system is self-stabilizing by construction — which the
// checker must confirm.
func randomStabilizingSpec(rng *rand.Rand, coreN, recoverN int) *system.System {
	n := coreN + recoverN
	b := system.NewBuilder("randA", n)
	// Core cycle 0 → 1 → … → coreN−1 → 0 with random chords.
	for i := 0; i < coreN; i++ {
		b.AddTransition(i, (i+1)%coreN)
	}
	for c := 0; c < coreN/2; c++ {
		b.AddTransition(rng.Intn(coreN), rng.Intn(coreN))
	}
	b.AddInit(0)
	// Recovery DAG: state i (≥ coreN) steps only to strictly smaller
	// states, so no cycles exist outside the core.
	for i := coreN; i < n; i++ {
		outs := 1 + rng.Intn(2)
		for o := 0; o < outs; o++ {
			b.AddTransition(i, rng.Intn(i))
		}
	}
	return b.Build()
}

// compressRecovery derives a convergence refinement C of A by replacing
// random recovery transitions (s, m) with their two-step compressions
// (s, t) for some A-successor t of m. Compressed edges stay inside the
// strictly-descending recovery region or enter the core, so they cannot
// lie on a cycle of C; core behavior is untouched.
func compressRecovery(rng *rand.Rand, a *system.System, coreN int) *system.System {
	n := a.NumStates()
	b := system.NewBuilder("randC", n)
	for s := 0; s < n; s++ {
		for _, m := range a.Succ(s) {
			if s >= coreN && rng.Intn(2) == 0 {
				if nexts := a.Succ(m); len(nexts) > 0 {
					t := nexts[rng.Intn(len(nexts))]
					if t != s { // a self-loop would be a new cycle
						b.AddTransition(s, t)
						continue
					}
				}
			}
			b.AddTransition(s, m)
		}
	}
	for _, s := range a.InitStates() {
		b.AddInit(s)
	}
	return b.Build()
}

// TestQuickTheorem1OnRandomInstances replays Theorem 1 on hundreds of
// random (A, C) pairs: the generator guarantees A self-stabilizing and
// [C ⪯ A]; the checkers must agree, and the theorem's conclusion — C
// stabilizing to A — must follow.
func TestQuickTheorem1OnRandomInstances(t *testing.T) {
	for trial := 0; trial < 300; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		coreN := 2 + rng.Intn(5)
		recoverN := 1 + rng.Intn(8)
		a := randomStabilizingSpec(rng, coreN, recoverN)
		c := compressRecovery(rng, a, coreN)

		if rep := SelfStabilizing(a); !rep.Holds {
			t.Fatalf("trial %d: generated A not self-stabilizing: %s", trial, rep.Verdict)
		}
		conv := ConvergenceRefinement(c, a, nil)
		if !conv.Holds {
			t.Fatalf("trial %d: generated C not ⪯ A: %s", trial, conv.Verdict)
		}
		// Theorem 1's conclusion.
		if rep := Stabilizing(c, a, nil); !rep.Holds {
			t.Fatalf("trial %d: Theorem 1 violated: %s", trial, rep.Verdict)
		}
		// Hierarchy: ⪯ implies ⊑ee.
		if v := EverywhereEventuallyRefinement(c, a, nil); !v.Holds {
			t.Fatalf("trial %d: hierarchy violated: %s", trial, v)
		}
	}
}

// TestQuickEverywhereImpliesConvergenceRandom: on random systems, any C
// that passes the everywhere-refinement check must pass the convergence
// check with zero compressions, and vice versa when no compressions are
// reported.
func TestQuickEverywhereImpliesConvergenceRandom(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		coreN := 2 + rng.Intn(4)
		recoverN := rng.Intn(6)
		a := randomStabilizingSpec(rng, coreN, recoverN)
		// Sub-refinement: drop random transitions of A (keeping at least
		// one per state) — every behavior of C is literally a behavior
		// of A.
		b := system.NewBuilder("subC", a.NumStates())
		for s := 0; s < a.NumStates(); s++ {
			outs := a.Succ(s)
			keep := rng.Intn(len(outs))
			for i, m := range outs {
				if i == keep || rng.Intn(3) > 0 {
					b.AddTransition(s, m)
				}
			}
		}
		for _, s := range a.InitStates() {
			b.AddInit(s)
		}
		c := b.Build()

		ev := EverywhereRefinement(c, a, nil)
		if !ev.Holds {
			t.Fatalf("trial %d: sub-refinement rejected: %s", trial, ev)
		}
		conv := ConvergenceRefinement(c, a, nil)
		if !conv.Holds || len(conv.Compressions) != 0 {
			t.Fatalf("trial %d: [C ⊑ A] ⇒ [C ⪯ A] violated: %s (%d compressions)",
				trial, conv.Verdict, len(conv.Compressions))
		}
	}
}

// TestQuickStabilizationMonotoneUnderBox: boxing a wrapper that only adds
// recovery transitions from outside the legitimate region onto a
// stabilizing system keeps it stabilizing — the essence of Lemma 4's
// direction, on random instances.
func TestQuickStabilizationMonotoneUnderBox(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(2000 + trial)))
		coreN := 2 + rng.Intn(4)
		recoverN := 1 + rng.Intn(6)
		a := randomStabilizingSpec(rng, coreN, recoverN)
		// Wrapper: extra descending recovery edges (no initial states).
		wb := system.NewBuilder("randW", a.NumStates())
		added := false
		for i := coreN; i < a.NumStates(); i++ {
			if rng.Intn(2) == 0 {
				wb.AddTransition(i, rng.Intn(i))
				added = true
			}
		}
		if !added {
			continue
		}
		w := wb.Build()
		boxed := system.Box(a, w)
		if rep := Stabilizing(boxed, a, nil); !rep.Holds {
			t.Fatalf("trial %d: descending wrapper broke stabilization: %s", trial, rep.Verdict)
		}
	}
}
