package core

import (
	"strings"
	"testing"

	"repro/internal/system"
)

// starveFixture builds a labeled system where an unfair daemon can loop
// on a "chase" action forever while a continuously enabled "recover"
// action would leave the bad region: states 1 ↔ 2 chase each other, and
// recover (enabled in both) exits to the legitimate self-loop at 0.
func starveFixture() (*system.LabeledSystem, *system.System) {
	sp := system.NewSpace(system.Int("x", 3))
	c := system.EnumerateLabeled("C", sp, []system.Action{
		{Name: "chase", Guard: func(v system.Vals) bool { return v[0] > 0 }, Effect: func(v system.Vals) {
			v[0] = 3 - v[0] // 1 ↔ 2
		}},
		{Name: "recover", Guard: func(v system.Vals) bool { return v[0] > 0 }, Effect: func(v system.Vals) {
			v[0] = 0
		}},
		{Name: "stay", Guard: func(v system.Vals) bool { return v[0] == 0 }, Effect: func(v system.Vals) {
			v[0] = 0
		}},
	}, func(v system.Vals) bool { return v[0] == 0 })

	ab := system.NewBuilder("A", 3)
	ab.AddTransition(0, 0)
	ab.AddInit(0)
	return c, ab.Build()
}

func TestFairStabilizingBreaksStarvation(t *testing.T) {
	c, a := starveFixture()
	// Unfair: the chase loop never recovers.
	unfair := Stabilizing(c.Base(), a, nil)
	if unfair.Holds {
		t.Fatalf("unfair check should fail: %s", unfair.Verdict)
	}
	// Weakly fair: recover is continuously enabled on the chase loop and
	// must eventually be taken.
	fair := FairStabilizing(c, a, nil)
	if !fair.Holds {
		t.Fatalf("fair check should pass: %s", fair.Verdict)
	}
	if !strings.Contains(fair.Relation, "weak fairness") {
		t.Fatalf("relation = %q", fair.Relation)
	}
}

func TestFairStabilizingStillCatchesRealDivergence(t *testing.T) {
	// A chase loop with NO escape stays a violation under fairness: the
	// only action enabled on the loop is the chase itself, which is taken.
	sp := system.NewSpace(system.Int("x", 3))
	c := system.EnumerateLabeled("C", sp, []system.Action{
		{Name: "chase", Guard: func(v system.Vals) bool { return v[0] > 0 }, Effect: func(v system.Vals) {
			v[0] = 3 - v[0]
		}},
		{Name: "stay", Guard: func(v system.Vals) bool { return v[0] == 0 }, Effect: func(v system.Vals) {
			v[0] = 0
		}},
	}, func(v system.Vals) bool { return v[0] == 0 })
	ab := system.NewBuilder("A", 3)
	ab.AddTransition(0, 0)
	ab.AddInit(0)

	rep := FairStabilizing(c, ab.Build(), nil)
	if rep.Holds {
		t.Fatalf("fair check should still fail: %s", rep.Verdict)
	}
	if len(rep.WitnessLoop) == 0 {
		t.Fatal("expected a loop witness")
	}
}

func TestFairStabilizingBadTerminal(t *testing.T) {
	sp := system.NewSpace(system.Int("x", 2))
	c := system.EnumerateLabeled("C", sp, []system.Action{
		{Name: "stay", Guard: func(v system.Vals) bool { return v[0] == 0 }, Effect: func(v system.Vals) {
			v[0] = 0
		}},
		// x=1 is terminal in C.
	}, func(v system.Vals) bool { return v[0] == 0 })
	ab := system.NewBuilder("A", 2)
	ab.AddTransition(0, 0)
	ab.AddInit(0)
	rep := FairStabilizing(c, ab.Build(), nil)
	if rep.Holds {
		t.Fatalf("bad terminal accepted under fairness: %s", rep.Verdict)
	}
	if !strings.Contains(rep.Reason, "terminal") {
		t.Fatalf("reason = %q", rep.Reason)
	}
}

func TestFairImpliedByUnfair(t *testing.T) {
	// Whenever the unfair check passes, the fair check must pass too
	// (fair computations are a subset of all computations).
	c, a := starveFixture()
	// Restrict to the recovering part: drop the chase action.
	sp := system.NewSpace(system.Int("x", 3))
	onlyRecover := system.EnumerateLabeled("C2", sp, []system.Action{
		{Name: "recover", Guard: func(v system.Vals) bool { return v[0] > 0 }, Effect: func(v system.Vals) {
			v[0] = 0
		}},
		{Name: "stay", Guard: func(v system.Vals) bool { return v[0] == 0 }, Effect: func(v system.Vals) {
			v[0] = 0
		}},
	}, func(v system.Vals) bool { return v[0] == 0 })
	if rep := Stabilizing(onlyRecover.Base(), a, nil); !rep.Holds {
		t.Fatalf("unfair: %s", rep.Verdict)
	}
	if rep := FairStabilizing(onlyRecover, a, nil); !rep.Holds {
		t.Fatalf("fair must follow: %s", rep.Verdict)
	}
	_ = c
}

func TestFairStabilizingSpaceMismatch(t *testing.T) {
	sp := system.NewSpace(system.Int("x", 2))
	c := system.EnumerateLabeled("C", sp, nil, nil)
	rep := FairStabilizing(c, line("A", 3), nil)
	if rep.Holds {
		t.Fatal("mismatched spaces accepted")
	}
}
