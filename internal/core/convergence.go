package core

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/mc"
	"repro/internal/system"
)

// ConvergenceRefinement decides [C ⪯ A] (Section 2's central definition):
//
//  1. [C ⊑ A]_init, and
//  2. every computation of C is a convergence isomorphism of some
//     computation of A — a subsequence with finitely many omissions, the
//     same initial state, and the same final state (if any).
//
// The decision procedure works edge-by-edge. A concrete step (s, t) must be
// realizable in A as a path from α(s) to α(t) of length ≥ 1: length exactly
// one is an exact step; length k ≥ 2 is a *compression* that omits k−1
// abstract states (Section 4.2's "compressed forms of computations"). A
// step with α(s) = α(t) is a stutter (τ step, Section 6) and is dropped by
// destuttering; stutters are only meaningful with a non-nil abstraction.
//
// Finiteness of omissions is a global condition: a compression edge lying
// on a cycle of C could be traversed infinitely often, making the omission
// count infinite. The procedure therefore rejects any compression edge
// (s, t) where t can reach s in C. For the paper's systems this condition
// holds because compressions destroy tokens (Lemma 7's argument) — the
// checker verifies the consequence directly instead of trusting the
// argument.
//
// Soundness: if the check passes, stitching the covering paths of the
// successive steps of any C-computation yields an A-computation of which
// the (destuttered image of the) C-computation is a convergence
// isomorphism. Completeness holds whenever A's covering paths can be chosen
// independently per edge, which is the case for every system in this
// repository; a failure report therefore names a genuinely offending step.
func ConvergenceRefinement(c, a *system.System, ab *system.Abstraction) *ConvergenceReport {
	rep, _ := ConvergenceRefinementGas(nil, c, a, ab)
	return rep
}

// ConvergenceRefinementGas is ConvergenceRefinement under a meter: the
// embedded refinement check, the per-edge sweep, and the covering-path
// searches all tick g, and the check aborts with g's error (cancellation
// or budget exhaustion) instead of running to completion.
func ConvergenceRefinementGas(g *mc.Gas, c, a *system.System, ab *system.Abstraction) (*ConvergenceReport, error) {
	relation := fmt.Sprintf("[%s ⪯ %s]", c.Name(), a.Name())
	rep := &ConvergenceReport{}
	alpha, stutterOK, err := alphaOf(c, a, ab)
	if err != nil {
		rep.Verdict = fail(relation, err.Error(), nil, nil)
		return rep, nil
	}

	rep.RefinementInit, err = RefinementInitGas(g, c, a, ab)
	if err != nil {
		return nil, err
	}
	if !rep.RefinementInit.Holds {
		rep.Verdict = fail(relation, "the embedded [C ⊑ A]_init check failed: "+rep.RefinementInit.Reason,
			rep.RefinementInit.Witness, rep.RefinementInit.WitnessLoop)
		return rep, nil
	}

	full := bitset.Full(c.NumStates())
	// Memoized BFS trees over A, one per needed source.
	trees := make(map[int]*mc.BFSTree)
	treeFor := func(src int) (*mc.BFSTree, error) {
		tr, okm := trees[src]
		if !okm {
			var err error
			tr, err = mc.BFSGas(g, a, src, nil)
			if err != nil {
				return nil, err
			}
			trees[src] = tr
		}
		return tr, nil
	}
	// SCC index of C, computed lazily on the first compression edge: an
	// edge (s, t) lies on a cycle of C iff s and t share a component.
	var cComp []int
	sameSCC := func(s, t int) (bool, error) {
		if s == t {
			return true, nil
		}
		if cComp == nil {
			var err error
			_, cComp, err = mc.SCCsGas(g, c, nil)
			if err != nil {
				return false, err
			}
		}
		return cComp[s] == cComp[t], nil
	}

	for s := 0; s < c.NumStates(); s++ {
		if err := g.Tick(1); err != nil {
			return nil, err
		}
		as := alpha.Of(s)
		if c.Terminal(s) {
			if !a.Terminal(as) {
				rep.Verdict = fail(relation,
					fmt.Sprintf("C terminates at %s but α-image %s is not terminal in %s: final states must agree",
						c.StateString(s), a.StateString(as), a.Name()),
					[]int{s}, nil)
				return rep, nil
			}
			continue
		}
		for _, t := range c.Succ(s) {
			if err := g.Tick(1); err != nil {
				return nil, err
			}
			at := alpha.Of(t)
			if as == at {
				if stutterOK {
					rep.StutterEdges++
					continue
				}
				if a.HasTransition(as, at) {
					rep.ExactEdges++
					continue
				}
				rep.Verdict = fail(relation,
					fmt.Sprintf("self-loop %s is not a transition of %s (no stutter allowance on a shared state space)",
						c.StateString(s), a.Name()),
					[]int{s, t}, nil)
				return rep, nil
			}
			if a.HasTransition(as, at) {
				rep.ExactEdges++
				continue
			}
			// Candidate compression: need an A-path α(s) →+ α(t).
			tree, err := treeFor(as)
			if err != nil {
				return nil, err
			}
			cover := tree.PathTo(at)
			if cover == nil {
				rep.Verdict = fail(relation,
					fmt.Sprintf("concrete step %s → %s has no covering path in %s: C departs from A's recovery paths",
						c.StateString(s), c.StateString(t), a.Name()),
					[]int{s, t}, nil)
				return rep, nil
			}
			// Finiteness: the compression edge must not lie on a C-cycle.
			cyclicEdge, err := sameSCC(s, t)
			if err != nil {
				return nil, err
			}
			if cyclicEdge {
				rep.Verdict = fail(relation,
					fmt.Sprintf("compression step %s → %s (omitting %d abstract states) lies on a cycle of C: a computation can traverse it infinitely often, so omissions are not finite",
						c.StateString(s), c.StateString(t), len(cover)-2),
					[]int{s, t}, nil)
				return rep, nil
			}
			rep.Compressions = append(rep.Compressions, Compression{
				From: s, To: t, Omissions: len(cover) - 2, Cover: cover,
			})
		}
	}

	if stutterOK {
		v, bad, err := checkStutterCycles(g, relation, c, a, alpha, full)
		if err != nil {
			return nil, err
		}
		if bad {
			rep.Verdict = v
			return rep, nil
		}
	}

	total := 0
	for _, cp := range rep.Compressions {
		total += cp.Omissions
	}
	rep.Verdict = ok(relation, fmt.Sprintf("%d exact steps, %d compressions (%d omitted abstract states max per computation), %d stutter steps",
		rep.ExactEdges, len(rep.Compressions), total, rep.StutterEdges))
	return rep, nil
}
