package core

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/mc"
	"repro/internal/system"
)

// ConvergenceRefinement decides [C ⪯ A] (Section 2's central definition):
//
//  1. [C ⊑ A]_init, and
//  2. every computation of C is a convergence isomorphism of some
//     computation of A — a subsequence with finitely many omissions, the
//     same initial state, and the same final state (if any).
//
// The decision procedure works edge-by-edge. A concrete step (s, t) must be
// realizable in A as a path from α(s) to α(t) of length ≥ 1: length exactly
// one is an exact step; length k ≥ 2 is a *compression* that omits k−1
// abstract states (Section 4.2's "compressed forms of computations"). A
// step with α(s) = α(t) is a stutter (τ step, Section 6) and is dropped by
// destuttering; stutters are only meaningful with a non-nil abstraction.
//
// Finiteness of omissions is a global condition: a compression edge lying
// on a cycle of C could be traversed infinitely often, making the omission
// count infinite. The procedure therefore rejects any compression edge
// (s, t) where t can reach s in C. For the paper's systems this condition
// holds because compressions destroy tokens (Lemma 7's argument) — the
// checker verifies the consequence directly instead of trusting the
// argument.
//
// Soundness: if the check passes, stitching the covering paths of the
// successive steps of any C-computation yields an A-computation of which
// the (destuttered image of the) C-computation is a convergence
// isomorphism. Completeness holds whenever A's covering paths can be chosen
// independently per edge, which is the case for every system in this
// repository; a failure report therefore names a genuinely offending step.
func ConvergenceRefinement(c, a *system.System, ab *system.Abstraction) *ConvergenceReport {
	relation := fmt.Sprintf("[%s ⪯ %s]", c.Name(), a.Name())
	rep := &ConvergenceReport{}
	alpha, stutterOK, err := alphaOf(c, a, ab)
	if err != nil {
		rep.Verdict = fail(relation, err.Error(), nil, nil)
		return rep
	}

	rep.RefinementInit = RefinementInit(c, a, ab)
	if !rep.RefinementInit.Holds {
		rep.Verdict = fail(relation, "the embedded [C ⊑ A]_init check failed: "+rep.RefinementInit.Reason,
			rep.RefinementInit.Witness, rep.RefinementInit.WitnessLoop)
		return rep
	}

	full := bitset.Full(c.NumStates())
	// Memoized BFS trees over A, one per needed source.
	trees := make(map[int]*mc.BFSTree)
	treeFor := func(src int) *mc.BFSTree {
		tr, okm := trees[src]
		if !okm {
			tr = mc.BFS(a, src, nil)
			trees[src] = tr
		}
		return tr
	}
	// SCC index of C, computed lazily on the first compression edge: an
	// edge (s, t) lies on a cycle of C iff s and t share a component.
	var cComp []int
	sameSCC := func(s, t int) bool {
		if s == t {
			return true
		}
		if cComp == nil {
			_, cComp = mc.SCCs(c, nil)
		}
		return cComp[s] == cComp[t]
	}

	for s := 0; s < c.NumStates(); s++ {
		as := alpha.Of(s)
		if c.Terminal(s) {
			if !a.Terminal(as) {
				rep.Verdict = fail(relation,
					fmt.Sprintf("C terminates at %s but α-image %s is not terminal in %s: final states must agree",
						c.StateString(s), a.StateString(as), a.Name()),
					[]int{s}, nil)
				return rep
			}
			continue
		}
		for _, t := range c.Succ(s) {
			at := alpha.Of(t)
			if as == at {
				if stutterOK {
					rep.StutterEdges++
					continue
				}
				if a.HasTransition(as, at) {
					rep.ExactEdges++
					continue
				}
				rep.Verdict = fail(relation,
					fmt.Sprintf("self-loop %s is not a transition of %s (no stutter allowance on a shared state space)",
						c.StateString(s), a.Name()),
					[]int{s, t}, nil)
				return rep
			}
			if a.HasTransition(as, at) {
				rep.ExactEdges++
				continue
			}
			// Candidate compression: need an A-path α(s) →+ α(t).
			cover := treeFor(as).PathTo(at)
			if cover == nil {
				rep.Verdict = fail(relation,
					fmt.Sprintf("concrete step %s → %s has no covering path in %s: C departs from A's recovery paths",
						c.StateString(s), c.StateString(t), a.Name()),
					[]int{s, t}, nil)
				return rep
			}
			// Finiteness: the compression edge must not lie on a C-cycle.
			if sameSCC(s, t) {
				rep.Verdict = fail(relation,
					fmt.Sprintf("compression step %s → %s (omitting %d abstract states) lies on a cycle of C: a computation can traverse it infinitely often, so omissions are not finite",
						c.StateString(s), c.StateString(t), len(cover)-2),
					[]int{s, t}, nil)
				return rep
			}
			rep.Compressions = append(rep.Compressions, Compression{
				From: s, To: t, Omissions: len(cover) - 2, Cover: cover,
			})
		}
	}

	if stutterOK {
		if v, bad := checkStutterCycles(relation, c, a, alpha, full); bad {
			rep.Verdict = v
			return rep
		}
	}

	total := 0
	for _, cp := range rep.Compressions {
		total += cp.Omissions
	}
	rep.Verdict = ok(relation, fmt.Sprintf("%d exact steps, %d compressions (%d omitted abstract states max per computation), %d stutter steps",
		rep.ExactEdges, len(rep.Compressions), total, rep.StutterEdges))
	return rep
}
