package core

import (
	"fmt"
	"strings"

	"repro/internal/system"
)

// TheoremCheck replays one of the paper's metatheorems on a concrete
// instance: it verifies each hypothesis, verifies the conclusion
// independently, and reports whether the implication was witnessed (all
// hypotheses and the conclusion hold). A theorem is *refuted* by an
// instance only if all hypotheses hold and the conclusion fails — which,
// the paper being sound, the test suite asserts never happens.
type TheoremCheck struct {
	Name       string
	Hypotheses []Verdict
	Conclusion Verdict
}

// HypothesesHold reports whether every hypothesis verdict passed.
func (tc *TheoremCheck) HypothesesHold() bool {
	for _, h := range tc.Hypotheses {
		if !h.Holds {
			return false
		}
	}
	return true
}

// Witnessed reports whether the instance witnesses the theorem: all
// hypotheses hold and so does the conclusion.
func (tc *TheoremCheck) Witnessed() bool {
	return tc.HypothesesHold() && tc.Conclusion.Holds
}

// Refuted reports whether the instance contradicts the theorem — all
// hypotheses hold yet the conclusion fails. This must never be true.
func (tc *TheoremCheck) Refuted() bool {
	return tc.HypothesesHold() && !tc.Conclusion.Holds
}

// String renders a multi-line summary.
func (tc *TheoremCheck) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", tc.Name)
	for _, h := range tc.Hypotheses {
		fmt.Fprintf(&b, "  hypothesis: %s\n", h)
	}
	fmt.Fprintf(&b, "  conclusion: %s\n", tc.Conclusion)
	switch {
	case tc.Refuted():
		b.WriteString("  REFUTED — hypotheses hold but conclusion fails\n")
	case tc.Witnessed():
		b.WriteString("  witnessed\n")
	default:
		b.WriteString("  vacuous (some hypothesis fails)\n")
	}
	return b.String()
}

// Theorem1 instantiates "If [C ⪯ A] and A is stabilizing to B, then C is
// stabilizing to B". abCA relates C to A; abAB relates A to B; the derived
// relation from C to B composes the two. Pass nil abstractions for shared
// state spaces.
func Theorem1(c, a, b *system.System, abCA, abAB *system.Abstraction) (*TheoremCheck, error) {
	abCB, err := Compose(abCA, abAB, c, a, b)
	if err != nil {
		return nil, fmt.Errorf("core: composing abstractions for Theorem 1: %w", err)
	}
	conv := ConvergenceRefinement(c, a, abCA)
	stab := Stabilizing(a, b, abAB)
	concl := Stabilizing(c, b, abCB)
	return &TheoremCheck{
		Name:       "Theorem 1",
		Hypotheses: []Verdict{conv.Verdict, stab.Verdict},
		Conclusion: concl.Verdict,
	}, nil
}

// Theorem3 instantiates "If [C ⪯ A] and (A [] W) is stabilizing to A then
// (C [] W) is stabilizing to A". It requires C, A and W over a shared
// state space (the Section 2 setting); for the cross-space versions the
// ring derivations instantiate Theorem 5 directly.
func Theorem3(c, a, w *system.System) *TheoremCheck {
	conv := ConvergenceRefinement(c, a, nil)
	wrapped := Stabilizing(system.Box(a, w), a, nil)
	concl := Stabilizing(system.Box(c, w), a, nil)
	return &TheoremCheck{
		Name:       "Theorem 3",
		Hypotheses: []Verdict{conv.Verdict, wrapped.Verdict},
		Conclusion: concl.Verdict,
	}
}

// Theorem5 instantiates the graybox wrapping theorem: "If [C ⪯ A] and
// (A [] W) is stabilizing to A then for all W' with [W' ⪯ W], (C [] W')
// is stabilizing to A", for one particular W'. All four systems share a
// state space here; the ring packages exercise the cross-space version by
// mapping their concrete systems through abstraction functions first.
func Theorem5(c, a, w, wPrime *system.System) *TheoremCheck {
	conv := ConvergenceRefinement(c, a, nil)
	wrapped := Stabilizing(system.Box(a, w), a, nil)
	wconv := ConvergenceRefinement(wPrime, w, nil)
	concl := Stabilizing(system.Box(c, wPrime), a, nil)
	return &TheoremCheck{
		Name:       "Theorem 5",
		Hypotheses: []Verdict{conv.Verdict, wrapped.Verdict, wconv.Verdict},
		Conclusion: concl.Verdict,
	}
}

// Compose builds the abstraction β∘α: Σ_C → Σ_B from α: Σ_C → Σ_A and
// β: Σ_A → Σ_B. Nil arguments denote identities; if both are nil the
// result is nil (identity), provided the endpoint spaces agree.
func Compose(abCA, abAB *system.Abstraction, c, a, b *system.System) (*system.Abstraction, error) {
	switch {
	case abCA == nil && abAB == nil:
		if c.NumStates() != b.NumStates() {
			return nil, fmt.Errorf("identity composition impossible: |Σ_C|=%d, |Σ_B|=%d", c.NumStates(), b.NumStates())
		}
		return nil, nil
	case abCA == nil:
		if c.NumStates() != a.NumStates() {
			return nil, fmt.Errorf("identity α impossible: |Σ_C|=%d, |Σ_A|=%d", c.NumStates(), a.NumStates())
		}
		return abAB, nil
	case abAB == nil:
		if a.NumStates() != b.NumStates() {
			return nil, fmt.Errorf("identity β impossible: |Σ_A|=%d, |Σ_B|=%d", a.NumStates(), b.NumStates())
		}
		return abCA, nil
	default:
		if abCA.NumAbstract() != abAB.NumConcrete() {
			return nil, fmt.Errorf("abstraction shapes do not compose: %d→%d then %d→%d",
				abCA.NumConcrete(), abCA.NumAbstract(), abAB.NumConcrete(), abAB.NumAbstract())
		}
		return system.NewAbstraction(abCA.NumConcrete(), abAB.NumAbstract(), func(s int) int {
			return abAB.Of(abCA.Of(s))
		})
	}
}
