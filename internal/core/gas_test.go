package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/mc"
	"repro/internal/ring"
)

// The gas-metered checker variants must (a) agree with the unmetered ones
// when the meter never trips, and (b) abandon the check with the meter's
// error when it does — this is the cancellation contract checkd relies on.

func TestGasVariantsAgreeWithPlain(t *testing.T) {
	b := ring.NewBTR(3)
	three := ring.NewThreeState(3)
	ab, err := three.Abstraction(b)
	if err != nil {
		t.Fatal(err)
	}
	d3, btr := three.Dijkstra3(), b.System()
	g := mc.NewGas(context.Background(), -1)

	rep, err := StabilizingGas(g, d3, btr, ab)
	if err != nil {
		t.Fatal(err)
	}
	plain := Stabilizing(d3, btr, ab)
	if rep.Holds != plain.Holds || rep.Reason != plain.Reason {
		t.Fatalf("metered stabilization diverged:\n%v\nvs\n%v", rep.Verdict, plain.Verdict)
	}

	conv, err := ConvergenceRefinementGas(g, d3, btr, ab)
	if err != nil {
		t.Fatal(err)
	}
	if conv.Holds != ConvergenceRefinement(d3, btr, ab).Holds {
		t.Fatal("metered convergence refinement diverged")
	}

	vInit, err := RefinementInitGas(g, d3, btr, ab)
	if err != nil {
		t.Fatal(err)
	}
	if vInit.Holds != RefinementInit(d3, btr, ab).Holds {
		t.Fatal("metered [⊑]_init diverged")
	}

	vEvery, err := EverywhereRefinementGas(g, d3, btr, ab)
	if err != nil {
		t.Fatal(err)
	}
	if vEvery.Holds != EverywhereRefinement(d3, btr, ab).Holds {
		t.Fatal("metered [⊑] diverged")
	}

	if g.Spent() == 0 {
		t.Fatal("meter recorded no work")
	}
}

func TestGasCancelsStabilization(t *testing.T) {
	d3 := ring.NewThreeState(5).Dijkstra3()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SelfStabilizingGas(mc.NewGas(ctx, -1), d3); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestGasBudgetBoundsChecks(t *testing.T) {
	d3 := ring.NewThreeState(5).Dijkstra3()
	if _, err := SelfStabilizingGas(mc.NewGas(nil, 10), d3); !errors.Is(err, mc.ErrBudgetExhausted) {
		t.Fatalf("stabilization: want ErrBudgetExhausted, got %v", err)
	}
	b := ring.NewBTR(3)
	four := ring.NewFourState(3)
	ab, err := four.Abstraction(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ConvergenceRefinementGas(mc.NewGas(nil, 10), four.C1(), b.System(), ab); !errors.Is(err, mc.ErrBudgetExhausted) {
		t.Fatalf("convergence: want ErrBudgetExhausted, got %v", err)
	}
}
