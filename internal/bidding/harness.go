package bidding

import (
	"fmt"
	"math/rand"
	"sort"
)

// Fault schedules one transient corruption: before processing the bid at
// stream index At, stored cell Slot is overwritten with Value.
type Fault struct {
	At    int
	Slot  int
	Value int
}

// RunStream feeds the stream through the server, applying faults at their
// scheduled points, and returns the declared winners (the stored bids at
// the end of the bidding period).
func RunStream(s Server, stream []int, faults []Fault) ([]int, error) {
	byAt := make(map[int][]Fault, len(faults))
	for _, f := range faults {
		if f.Slot < 0 || f.Slot >= s.K() {
			return nil, fmt.Errorf("bidding: fault slot %d outside [0,%d)", f.Slot, s.K())
		}
		if f.At < 0 || f.At > len(stream) {
			return nil, fmt.Errorf("bidding: fault time %d outside [0,%d]", f.At, len(stream))
		}
		byAt[f.At] = append(byAt[f.At], f)
	}
	for i, v := range stream {
		for _, f := range byAt[i] {
			s.CorruptSlot(f.Slot, f.Value)
		}
		s.Bid(v)
	}
	for _, f := range byAt[len(stream)] {
		s.CorruptSlot(f.Slot, f.Value)
	}
	return s.Stored(), nil
}

// BestK returns the k largest values of the stream (padded with zeros for
// short streams, matching the servers' zero-initialized slots), sorted
// descending.
func BestK(stream []int, k int) []int {
	all := make([]int, 0, len(stream)+k)
	all = append(all, stream...)
	for i := 0; i < k; i++ {
		all = append(all, 0)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(all)))
	return all[:k]
}

// Overlap returns the size of the multiset intersection of a and b.
func Overlap(a, b []int) int {
	counts := make(map[int]int, len(a))
	for _, x := range a {
		counts[x]++
	}
	n := 0
	for _, x := range b {
		if counts[x] > 0 {
			counts[x]--
			n++
		}
	}
	return n
}

// Satisfies reports whether winners meet the paper's tolerance bar:
// at least (k − allowedLosses) of the true best-k appear among them.
// allowedLosses is 0 for fault-free runs and 1 for single-corruption runs.
func Satisfies(winners, stream []int, k, allowedLosses int) bool {
	return Overlap(winners, BestK(stream, k)) >= k-allowedLosses
}

// TrialStats aggregates randomized tolerance trials.
type TrialStats struct {
	// Trials is the number of runs.
	Trials int
	// Satisfied counts runs meeting the (k−1)-of-best-k bar.
	Satisfied int
	// MeanOverlap is the average |winners ∩ best-k|.
	MeanOverlap float64
}

// MeasureTolerance runs `trials` random streams against fresh servers from
// mk, corrupting one random slot to MaxValue at a random time, and scores
// each run against (k−1)-of-best-k. Values are drawn from [1, maxBid].
func MeasureTolerance(mk func() Server, trials, streamLen, maxBid int, seed int64) (*TrialStats, error) {
	rng := rand.New(rand.NewSource(seed))
	stats := &TrialStats{Trials: trials}
	totalOverlap := 0
	for trial := 0; trial < trials; trial++ {
		s := mk()
		stream := make([]int, streamLen)
		for i := range stream {
			stream[i] = 1 + rng.Intn(maxBid)
		}
		fault := Fault{
			At:    rng.Intn(streamLen + 1),
			Slot:  rng.Intn(s.K()),
			Value: MaxValue,
		}
		winners, err := RunStream(s, stream, []Fault{fault})
		if err != nil {
			return nil, err
		}
		// The corruption value itself may legitimately sit in a slot; it
		// must not count as a delivered best bid.
		ov := Overlap(winners, BestK(stream, s.K()))
		totalOverlap += ov
		if ov >= s.K()-1 {
			stats.Satisfied++
		}
	}
	stats.MeanOverlap = float64(totalOverlap) / float64(trials)
	return stats, nil
}
