package bidding

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func sortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}

func TestSpecKeepsBestK(t *testing.T) {
	s := NewSpec(3)
	for _, v := range []int{5, 1, 9, 3, 7, 2} {
		s.Bid(v)
	}
	got := sortedCopy(s.Stored())
	want := []int{5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stored = %v, want %v", got, want)
		}
	}
}

// Property: in the absence of faults all three servers agree with the
// ground-truth best-k on random streams.
func TestQuickServersAgreeFaultFree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(5)
		stream := make([]int, rng.Intn(40))
		for i := range stream {
			stream[i] = 1 + rng.Intn(20)
		}
		want := BestK(stream, k)
		for _, mk := range []func() Server{
			func() Server { return NewSpec(k) },
			func() Server { return NewSortedList(k) },
			func() Server { return NewScanMin(k) },
		} {
			s := mk()
			winners, err := RunStream(s, stream, nil)
			if err != nil {
				return false
			}
			if Overlap(winners, want) != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPaperScenario reproduces the Section 1 failure verbatim: the head of
// the sorted list is corrupted to MAX_INTEGER, after which no new bid
// enters; the spec server shrugs the same fault off.
func TestPaperScenario(t *testing.T) {
	const k = 3
	stream := []int{4, 8, 2, 9, 7, 6, 5}
	// Corrupt after 3 bids, then 4 more good bids arrive.
	fault := Fault{At: 3, Slot: 0, Value: MaxValue}

	spec := NewSpec(k)
	specWinners, err := RunStream(spec, stream, []Fault{fault})
	if err != nil {
		t.Fatal(err)
	}
	if !Satisfies(specWinners, stream, k, 1) {
		t.Fatalf("spec failed (k−1)-of-best-k: winners %v", specWinners)
	}

	sorted := NewSortedList(k)
	sortedWinners, err := RunStream(sorted, stream, []Fault{fault})
	if err != nil {
		t.Fatal(err)
	}
	if Satisfies(sortedWinners, stream, k, 1) {
		t.Fatalf("sorted list unexpectedly satisfied the bar: winners %v", sortedWinners)
	}
	// The wedge: both non-corrupted slots still hold pre-fault values.
	if Overlap(sortedWinners, BestK(stream, k)) > 1 {
		t.Fatalf("sorted list admitted post-fault bids: %v", sortedWinners)
	}

	robust := NewScanMin(k)
	robustWinners, err := RunStream(robust, stream, []Fault{fault})
	if err != nil {
		t.Fatal(err)
	}
	if !Satisfies(robustWinners, stream, k, 1) {
		t.Fatalf("scan-min failed the bar: winners %v", robustWinners)
	}
}

// Property: the spec and scan-min servers satisfy (k−1)-of-best-k under
// ANY single corruption (arbitrary slot, arbitrary value, arbitrary time).
func TestQuickSingleCorruptionTolerance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(4)
		n := 1 + rng.Intn(30)
		stream := make([]int, n)
		for i := range stream {
			stream[i] = 1 + rng.Intn(15)
		}
		fault := Fault{At: rng.Intn(n + 1), Slot: rng.Intn(k)}
		switch rng.Intn(3) {
		case 0:
			fault.Value = MaxValue
		case 1:
			fault.Value = 0
		default:
			fault.Value = rng.Intn(20)
		}
		for _, mk := range []func() Server{
			func() Server { return NewSpec(k) },
			func() Server { return NewScanMin(k) },
		} {
			winners, err := RunStream(mk(), stream, []Fault{fault})
			if err != nil {
				return false
			}
			if !Satisfies(winners, stream, k, 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureTolerance(t *testing.T) {
	const k = 4
	specStats, err := MeasureTolerance(func() Server { return NewSpec(k) }, 100, 50, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if specStats.Satisfied != specStats.Trials {
		t.Fatalf("spec satisfied %d/%d", specStats.Satisfied, specStats.Trials)
	}
	robustStats, err := MeasureTolerance(func() Server { return NewScanMin(k) }, 100, 50, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if robustStats.Satisfied != robustStats.Trials {
		t.Fatalf("scan-min satisfied %d/%d", robustStats.Satisfied, robustStats.Trials)
	}
	sortedStats, err := MeasureTolerance(func() Server { return NewSortedList(k) }, 100, 50, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sortedStats.Satisfied >= robustStats.Satisfied {
		t.Fatalf("sorted list (%d/%d) should satisfy strictly less often than scan-min (%d/%d)",
			sortedStats.Satisfied, sortedStats.Trials, robustStats.Satisfied, robustStats.Trials)
	}
}

func TestBestK(t *testing.T) {
	got := BestK([]int{3, 1, 2}, 2)
	if got[0] != 3 || got[1] != 2 {
		t.Fatalf("BestK = %v", got)
	}
	// Short streams pad with the servers' zero-valued slots.
	got = BestK([]int{5}, 3)
	if got[0] != 5 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("BestK = %v", got)
	}
}

func TestOverlapMultiset(t *testing.T) {
	if got := Overlap([]int{2, 2, 3}, []int{2, 3, 3}); got != 2 {
		t.Fatalf("Overlap = %d, want 2", got)
	}
	if got := Overlap(nil, []int{1}); got != 0 {
		t.Fatalf("Overlap = %d, want 0", got)
	}
}

func TestRunStreamValidation(t *testing.T) {
	s := NewSpec(2)
	if _, err := RunStream(s, []int{1}, []Fault{{Slot: 5}}); err == nil {
		t.Fatal("bad slot accepted")
	}
	if _, err := RunStream(s, []int{1}, []Fault{{At: 7}}); err == nil {
		t.Fatal("bad time accepted")
	}
	// Fault exactly at end of stream is legal (corruption after bidding).
	if _, err := RunStream(s, []int{1}, []Fault{{At: 1}}); err != nil {
		t.Fatal(err)
	}
}

func TestSortedListInsertionCorrect(t *testing.T) {
	// Fault-free sorted list stays sorted through arbitrary streams.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSortedList(4)
		for i := 0; i < 30; i++ {
			s.Bid(1 + rng.Intn(25))
			st := s.Stored()
			if !sort.IntsAreSorted(st) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConstructorsRejectBadK(t *testing.T) {
	for _, fn := range []func(){
		func() { NewSpec(0) },
		func() { NewSortedList(-1) },
		func() { NewScanMin(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
