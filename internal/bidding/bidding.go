// Package bidding reproduces the second Section 1 example: a bidding
// server that stores the highest k bids. The abstract specification is
// tolerant to the corruption of a single stored bid — it still delivers
// (k−1) of the best k — but its sorted-list refinement is not: corrupting
// the list head to the maximum value blocks every later bid. A repaired
// refinement that re-scans for the true minimum restores the tolerance.
// The package provides the three servers, a fault-injecting stream
// harness, and the (k−1)-of-best-k metric.
package bidding

import (
	"fmt"
	"sort"
)

// MaxValue plays the role of MAX_INTEGER in the paper's scenario: the
// corruption value that wedges the sorted-list implementation.
const MaxValue = int(^uint(0) >> 1)

// Server is the bidding-server interface of Section 1: Bid offers a value;
// Stored returns the currently stored bids; CorruptSlot models a transient
// fault hitting one stored cell.
type Server interface {
	// Name identifies the implementation in reports.
	Name() string
	// K returns the number of stored bids.
	K() int
	// Bid offers v: the server replaces its minimum stored bid with v iff
	// v is greater than that minimum.
	Bid(v int)
	// Stored returns a copy of the stored bids (unspecified order).
	Stored() []int
	// CorruptSlot overwrites stored cell i with v (the fault action).
	CorruptSlot(i, v int)
}

// Spec is the abstract specification server: a plain multiset of k bids
// with the replace-minimum rule applied literally. It recomputes the
// minimum on every call, so its behavior depends only on the multiset —
// corruption perturbs one value and nothing else.
type Spec struct {
	bids []int
}

// NewSpec builds the specification server with k zero-valued slots.
func NewSpec(k int) *Spec {
	if k <= 0 {
		panic(fmt.Sprintf("bidding: k must be positive, got %d", k))
	}
	return &Spec{bids: make([]int, k)}
}

// Name implements Server.
func (s *Spec) Name() string { return "spec" }

// K implements Server.
func (s *Spec) K() int { return len(s.bids) }

// Bid implements Server.
func (s *Spec) Bid(v int) {
	mi := 0
	for i, b := range s.bids {
		if b < s.bids[mi] {
			mi = i
		}
	}
	if v > s.bids[mi] {
		s.bids[mi] = v
	}
}

// Stored implements Server.
func (s *Spec) Stored() []int { return append([]int(nil), s.bids...) }

// CorruptSlot implements Server.
func (s *Spec) CorruptSlot(i, v int) { s.bids[i] = v }

// SortedList is the fragile refinement: bids are kept sorted ascending
// with the minimum at the head, and Bid trusts the sort order — it
// compares v against the head only. Absent faults this refines Spec
// exactly; with the head corrupted to MaxValue, every later bid is
// rejected and the server fails (k−1)-of-best-k.
type SortedList struct {
	bids []int // ascending; head = minimum (by presumed invariant)
}

// NewSortedList builds the sorted-list server with k zero-valued slots.
func NewSortedList(k int) *SortedList {
	if k <= 0 {
		panic(fmt.Sprintf("bidding: k must be positive, got %d", k))
	}
	return &SortedList{bids: make([]int, k)}
}

// Name implements Server.
func (s *SortedList) Name() string { return "sorted-list" }

// K implements Server.
func (s *SortedList) K() int { return len(s.bids) }

// Bid implements Server: compare against the head, drop it, insert v in
// order — correct exactly while the sort-order invariant holds.
func (s *SortedList) Bid(v int) {
	if v <= s.bids[0] {
		return
	}
	rest := s.bids[1:]
	i := sort.SearchInts(rest, v)
	copy(s.bids, rest[:i])
	s.bids[i] = v
	// Elements above the insertion point are already in place.
}

// Stored implements Server.
func (s *SortedList) Stored() []int { return append([]int(nil), s.bids...) }

// CorruptSlot implements Server. Corruption does not re-sort: that is the
// point — the implementation's extra invariant (sortedness) is exactly
// what the fault breaks.
func (s *SortedList) CorruptSlot(i, v int) { s.bids[i] = v }

// ScanMin is the repaired refinement: it keeps the same array but locates
// the true minimum by scanning on every bid, never trusting residual
// order. A single corrupted cell therefore perturbs at most that one
// stored value, and the (k−1)-of-best-k guarantee survives — the repair a
// graybox wrapper would impose.
type ScanMin struct {
	bids []int
}

// NewScanMin builds the scanning server with k zero-valued slots.
func NewScanMin(k int) *ScanMin {
	if k <= 0 {
		panic(fmt.Sprintf("bidding: k must be positive, got %d", k))
	}
	return &ScanMin{bids: make([]int, k)}
}

// Name implements Server.
func (s *ScanMin) Name() string { return "scan-min" }

// K implements Server.
func (s *ScanMin) K() int { return len(s.bids) }

// Bid implements Server.
func (s *ScanMin) Bid(v int) {
	mi := 0
	for i, b := range s.bids {
		if b < s.bids[mi] {
			mi = i
		}
	}
	if v > s.bids[mi] {
		s.bids[mi] = v
	}
}

// Stored implements Server.
func (s *ScanMin) Stored() []int { return append([]int(nil), s.bids...) }

// CorruptSlot implements Server.
func (s *ScanMin) CorruptSlot(i, v int) { s.bids[i] = v }

// Interface compliance.
var (
	_ Server = (*Spec)(nil)
	_ Server = (*SortedList)(nil)
	_ Server = (*ScanMin)(nil)
)
