package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if !s.Empty() {
		t.Fatal("new set should be empty")
	}
	if s.Count() != 0 {
		t.Fatalf("Count = %d, want 0", s.Count())
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
	if s.First() != -1 {
		t.Fatalf("First = %d, want -1", s.First())
	}
}

func TestAddHasRemove(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 128, 129} {
		if s.Has(i) {
			t.Fatalf("Has(%d) before Add", i)
		}
		s.Add(i)
		if !s.Has(i) {
			t.Fatalf("!Has(%d) after Add", i)
		}
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	s.Remove(64)
	if s.Has(64) {
		t.Fatal("Has(64) after Remove")
	}
	if got := s.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
}

func TestAddIdempotent(t *testing.T) {
	s := New(10)
	s.Add(3)
	s.Add(3)
	if got := s.Count(); got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
}

func TestFull(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128} {
		s := Full(n)
		if got := s.Count(); got != n {
			t.Fatalf("Full(%d).Count = %d", n, got)
		}
		for i := 0; i < n; i++ {
			if !s.Has(i) {
				t.Fatalf("Full(%d) missing %d", n, i)
			}
		}
	}
}

func TestComplement(t *testing.T) {
	s := FromSlice(70, []int{0, 5, 69})
	c := s.Complement()
	if got := c.Count(); got != 67 {
		t.Fatalf("Count = %d, want 67", got)
	}
	for i := 0; i < 70; i++ {
		if s.Has(i) == c.Has(i) {
			t.Fatalf("complement agrees with set at %d", i)
		}
	}
}

func TestSetOps(t *testing.T) {
	a := FromSlice(100, []int{1, 2, 3, 50, 99})
	b := FromSlice(100, []int{2, 3, 4, 99})

	u := a.Clone()
	u.UnionWith(b)
	wantU := FromSlice(100, []int{1, 2, 3, 4, 50, 99})
	if !u.Equal(wantU) {
		t.Fatalf("union = %v, want %v", u, wantU)
	}

	i := a.Clone()
	i.IntersectWith(b)
	wantI := FromSlice(100, []int{2, 3, 99})
	if !i.Equal(wantI) {
		t.Fatalf("intersect = %v, want %v", i, wantI)
	}

	d := a.Clone()
	d.DifferenceWith(b)
	wantD := FromSlice(100, []int{1, 50})
	if !d.Equal(wantD) {
		t.Fatalf("difference = %v, want %v", d, wantD)
	}
}

func TestSubsetOf(t *testing.T) {
	a := FromSlice(10, []int{1, 2})
	b := FromSlice(10, []int{1, 2, 3})
	if !a.SubsetOf(b) {
		t.Fatal("a should be subset of b")
	}
	if b.SubsetOf(a) {
		t.Fatal("b should not be subset of a")
	}
	if !a.SubsetOf(a) {
		t.Fatal("a should be subset of itself")
	}
}

func TestMembersSorted(t *testing.T) {
	s := FromSlice(200, []int{150, 3, 77, 0, 199})
	got := s.Members()
	want := []int{0, 3, 77, 150, 199}
	if len(got) != len(want) {
		t.Fatalf("Members = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
}

func TestFirst(t *testing.T) {
	s := FromSlice(200, []int{150, 77, 199})
	if got := s.First(); got != 77 {
		t.Fatalf("First = %d, want 77", got)
	}
}

func TestString(t *testing.T) {
	s := FromSlice(10, []int{1, 3})
	if got := s.String(); got != "{1, 3}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(10).String(); got != "{}" {
		t.Fatalf("String = %q", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(5).Add(5)
}

func TestUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(5).UnionWith(New(6))
}

// Property: union is commutative and idempotent; difference then union
// with the intersection restores the original.
func TestQuickSetAlgebra(t *testing.T) {
	const n = 256
	f := func(as, bs []uint16) bool {
		a, b := New(n), New(n)
		for _, x := range as {
			a.Add(int(x) % n)
		}
		for _, x := range bs {
			b.Add(int(x) % n)
		}
		ab := a.Clone()
		ab.UnionWith(b)
		ba := b.Clone()
		ba.UnionWith(a)
		if !ab.Equal(ba) {
			return false
		}
		// (a \ b) ∪ (a ∩ b) == a
		d := a.Clone()
		d.DifferenceWith(b)
		i := a.Clone()
		i.IntersectWith(b)
		d.UnionWith(i)
		return d.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Count agrees with a reference implementation over random sets.
func TestQuickCountReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		ref := make(map[int]bool)
		s := New(n)
		for k := 0; k < 100; k++ {
			i := rng.Intn(n)
			if rng.Intn(2) == 0 {
				s.Add(i)
				ref[i] = true
			} else {
				s.Remove(i)
				delete(ref, i)
			}
		}
		if s.Count() != len(ref) {
			t.Fatalf("Count = %d, ref = %d", s.Count(), len(ref))
		}
		for i := 0; i < n; i++ {
			if s.Has(i) != ref[i] {
				t.Fatalf("Has(%d) = %v, ref %v", i, s.Has(i), ref[i])
			}
		}
	}
}

func TestComplementRoundTrip(t *testing.T) {
	s := FromSlice(129, []int{0, 64, 128, 77})
	if !s.Complement().Complement().Equal(s) {
		t.Fatal("double complement should be identity")
	}
}

func TestClearAndClone(t *testing.T) {
	s := FromSlice(10, []int{1, 2, 3})
	c := s.Clone()
	s.Clear()
	if !s.Empty() {
		t.Fatal("Clear left members")
	}
	if c.Count() != 3 {
		t.Fatal("Clone shares storage with original")
	}
}
