// Package bitset provides a dense bit set used to represent sets of
// automaton states. It is a small, allocation-conscious substrate for the
// model-checking engine: state spaces in this repository are contiguous
// integer ranges, so a dense representation beats map[int]struct{} both in
// memory and in iteration order (which is deterministic here by
// construction).
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity dense bit set over the universe [0, Len()).
// The zero value is an empty set of capacity zero; use New to create a
// set with a non-zero universe.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set over the universe [0, n).
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative universe size %d", n))
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromSlice returns a set over [0, n) containing exactly the given members.
func FromSlice(n int, members []int) *Set {
	s := New(n)
	for _, m := range members {
		s.Add(m)
	}
	return s
}

// Full returns the set containing every element of [0, n).
func Full(n int) *Set {
	s := New(n)
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
	return s
}

// trim clears bits beyond the universe in the last word.
func (s *Set) trim() {
	if s.n%wordBits != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (uint64(1) << uint(s.n%wordBits)) - 1
	}
}

// Len returns the universe size n (not the number of members; see Count).
func (s *Set) Len() int { return s.n }

// Count returns the number of members.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no members.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of universe [0,%d)", i, s.n))
	}
}

// Add inserts i into the set.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove deletes i from the set.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Has reports whether i is a member.
func (s *Set) Has(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// Clear removes every member, keeping the universe size.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

func (s *Set) sameUniverse(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: universe mismatch %d vs %d", s.n, t.n))
	}
}

// UnionWith adds every member of t to s.
func (s *Set) UnionWith(t *Set) {
	s.sameUniverse(t)
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// IntersectWith removes members of s not in t.
func (s *Set) IntersectWith(t *Set) {
	s.sameUniverse(t)
	for i := range s.words {
		s.words[i] &= t.words[i]
	}
}

// DifferenceWith removes members of t from s.
func (s *Set) DifferenceWith(t *Set) {
	s.sameUniverse(t)
	for i := range s.words {
		s.words[i] &^= t.words[i]
	}
}

// Complement returns the set of non-members within the universe.
func (s *Set) Complement() *Set {
	c := s.Clone()
	for i := range c.words {
		c.words[i] = ^c.words[i]
	}
	c.trim()
	return c
}

// SubsetOf reports whether every member of s is a member of t.
func (s *Set) SubsetOf(t *Set) bool {
	s.sameUniverse(t)
	for i := range s.words {
		if s.words[i]&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t have the same members and universe.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != t.words[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn on every member in increasing order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// Members returns the members in increasing order.
func (s *Set) Members() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// First returns the smallest member, or -1 if the set is empty.
func (s *Set) First() int {
	for wi, w := range s.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// String renders the set as "{a, b, c}" for debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}
