package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/gcl"
	"repro/internal/gcl/analysis"
	"repro/internal/mc"
	"repro/internal/service/cache"
	"repro/internal/sim"
	"repro/internal/system"
)

const (
	kindSelfStab = "selfstab"
	kindRefine   = "refine"
	kindRingsim  = "ringsim"
	kindLint     = "lint"

	// maxBodyBytes bounds request bodies; GCL programs are text and the
	// state-space bound rejects big programs anyway.
	maxBodyBytes = 1 << 20
)

// Verdict is the JSON form of one relation check, with the witness
// rendered in the concrete system's state vocabulary.
type Verdict struct {
	Holds       bool     `json:"holds"`
	Relation    string   `json:"relation"`
	Reason      string   `json:"reason"`
	Witness     []string `json:"witness,omitempty"`
	WitnessLoop []string `json:"witness_loop,omitempty"`
}

func verdictJSON(v core.Verdict, sys *system.System) Verdict {
	out := Verdict{Holds: v.Holds, Relation: v.Relation, Reason: v.Reason}
	for _, st := range v.Witness {
		out.Witness = append(out.Witness, sys.StateString(st))
	}
	for _, st := range v.WitnessLoop {
		out.WitnessLoop = append(out.WitnessLoop, sys.StateString(st))
	}
	return out
}

// SelfStabRequest is the body of POST /v1/selfstab.
type SelfStabRequest struct {
	// Source is the GCL program text.
	Source string `json:"source"`
	// TimeoutMS overrides the server's default per-request deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Budget overrides the server's default enumeration step budget.
	Budget int64 `json:"budget,omitempty"`
}

// SelfStabResponse is the battery gclc selfstab prints, structured.
type SelfStabResponse struct {
	// Program is the content address of the canonicalized program.
	Program string  `json:"program"`
	States  int     `json:"states"`
	Verdict Verdict `json:"verdict"`
	// LegitimateStates counts states from which every computation tracks
	// the program's own from-init behavior forever.
	LegitimateStates int   `json:"legitimate_states"`
	Cached           bool  `json:"cached"`
	ElapsedUS        int64 `json:"elapsed_us"`
}

func (r SelfStabResponse) asCached(elapsed time.Duration) any {
	r.Cached = true
	r.ElapsedUS = elapsed.Microseconds()
	return r
}

// RefineRequest is the body of POST /v1/refine: a concrete and an
// abstract program over the same declared state space.
type RefineRequest struct {
	Concrete  string `json:"concrete"`
	Abstract  string `json:"abstract"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
	Budget    int64  `json:"budget,omitempty"`
}

// RefineResponse is the four-verdict battery gclc refine prints.
type RefineResponse struct {
	Concrete string `json:"concrete"`
	Abstract string `json:"abstract"`
	States   int    `json:"states"`
	// The battery, in gclc refine's order.
	RefinementInit Verdict `json:"refinement_init"`
	Everywhere     Verdict `json:"everywhere"`
	Convergence    Verdict `json:"convergence"`
	Stabilizing    Verdict `json:"stabilizing"`
	// Holds is the conjunction of the four verdicts.
	Holds     bool  `json:"holds"`
	Cached    bool  `json:"cached"`
	ElapsedUS int64 `json:"elapsed_us"`
}

func (r RefineResponse) asCached(elapsed time.Duration) any {
	r.Cached = true
	r.ElapsedUS = elapsed.Microseconds()
	return r
}

// LintRequest is the body of POST /v1/lint (alias /lint): one GCL
// program to statically analyze.
type LintRequest struct {
	// Source is the GCL program text.
	Source string `json:"source"`
	// TimeoutMS overrides the server's default per-request deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Budget overrides the server's default step budget for the exact
	// enumeration tier. An exhausted budget is not an error: the
	// response simply reports exact = false and approx-confidence
	// diagnostics.
	Budget int64 `json:"budget,omitempty"`
}

// LintResponse mirrors `gclc lint -json`: the diagnostics of the
// analyzer registry for one program.
type LintResponse struct {
	// Program is the content address of the canonicalized program.
	Program string `json:"program"`
	States  int    `json:"states"`
	// Exact reports whether the enumeration tier completed.
	Exact bool `json:"exact"`
	// AnalyzerVersion identifies the analyzer set that produced the
	// diagnostics (also part of the verdict-cache key).
	AnalyzerVersion string `json:"analyzer_version"`
	// Errors counts error-severity diagnostics.
	Errors    int             `json:"errors"`
	Diags     []analysis.Diag `json:"diags"`
	Cached    bool            `json:"cached"`
	ElapsedUS int64           `json:"elapsed_us"`
}

func (r LintResponse) asCached(elapsed time.Duration) any {
	r.Cached = true
	r.ElapsedUS = elapsed.Microseconds()
	return r
}

// RingsimRequest is the body of POST /v1/ringsim: a protocol family and
// simulation parameters, mirroring cmd/ringsim's flags.
type RingsimRequest struct {
	Family    string `json:"family"`           // dijkstra3 | dijkstra4 | kstate | newthree
	Procs     int    `json:"procs"`            // number of processes (≥ 3)
	K         int    `json:"k,omitempty"`      // kstate only; default procs
	Daemon    string `json:"daemon,omitempty"` // random | roundrobin | greedy (default random)
	Seed      int64  `json:"seed,omitempty"`
	Faults    int    `json:"faults,omitempty"` // corrupted registers per run (default 3)
	Steps     int    `json:"steps,omitempty"`  // step budget per run (default 100000)
	Runs      int    `json:"runs,omitempty"`   // runs to aggregate (default 10)
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// RingsimResponse aggregates convergence statistics.
type RingsimResponse struct {
	Protocol  string  `json:"protocol"`
	Daemon    string  `json:"daemon"`
	Runs      int     `json:"runs"`
	Converged int     `json:"converged"`
	MeanSteps float64 `json:"mean_steps"`
	MaxSteps  int     `json:"max_steps"`
	Faults    int     `json:"faults"`
	Cached    bool    `json:"cached"`
	ElapsedUS int64   `json:"elapsed_us"`
}

func (r RingsimResponse) asCached(elapsed time.Duration) any {
	r.Cached = true
	r.ElapsedUS = elapsed.Microseconds()
	return r
}

// decodeJSON reads a bounded JSON body, rejecting unknown fields so typos
// in requests fail loudly instead of silently using defaults.
func decodeJSON(r *http.Request, into any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return badRequest("invalid request body: %v", err)
	}
	return nil
}

// parseProgram parses and admission-checks one GCL source: syntax,
// semantic checks, and the declared state-space bound — everything cheap
// enough to do on the request goroutine, before a worker is committed.
func (s *Server) parseProgram(field, src string) (*gcl.Program, error) {
	if src == "" {
		return nil, badRequest("missing %q: expected GCL program text", field)
	}
	prog, err := gcl.Parse(src)
	if err != nil {
		return nil, badRequest("%s: %v", field, err)
	}
	if err := gcl.Check(prog); err != nil {
		return nil, badRequest("%s: %v", field, err)
	}
	if size := gcl.SpaceOf(prog).Size(); size > s.cfg.MaxStates {
		return nil, badRequest("%s: state space has %d states, above the server's limit of %d",
			field, size, s.cfg.MaxStates)
	}
	return prog, nil
}

func (s *Server) handleSelfStab(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	s.recordRequest(kindSelfStab)
	var req SelfStabRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeComputeError(w, err)
		return
	}
	prog, err := s.parseProgram("source", req.Source)
	if err != nil {
		s.writeComputeError(w, err)
		return
	}
	fp := gcl.Fingerprint(prog)
	key := cache.Key(kindSelfStab, fp)
	if s.serveFromCache(w, key, started) {
		return
	}
	budget := s.resolveBudget(req.Budget)
	s.execute(w, r, kindSelfStab, key, req.TimeoutMS, func(ctx context.Context) (any, error) {
		c, err := gcl.CompileProgram("program", prog)
		if err != nil {
			return nil, badRequest("source: %v", err)
		}
		rep, err := core.SelfStabilizingGas(mc.NewGas(ctx, budget), c.System)
		if err != nil {
			return nil, err
		}
		return SelfStabResponse{
			Program:          fp,
			States:           c.System.NumStates(),
			Verdict:          verdictJSON(rep.Verdict, c.System),
			LegitimateStates: len(rep.Legitimate),
			ElapsedUS:        time.Since(started).Microseconds(),
		}, nil
	})
}

func (s *Server) handleRefine(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	s.recordRequest(kindRefine)
	var req RefineRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeComputeError(w, err)
		return
	}
	concrete, err := s.parseProgram("concrete", req.Concrete)
	if err != nil {
		s.writeComputeError(w, err)
		return
	}
	abstract, err := s.parseProgram("abstract", req.Abstract)
	if err != nil {
		s.writeComputeError(w, err)
		return
	}
	fpC, fpA := gcl.Fingerprint(concrete), gcl.Fingerprint(abstract)
	key := cache.Key(kindRefine, fpC, fpA)
	if s.serveFromCache(w, key, started) {
		return
	}
	budget := s.resolveBudget(req.Budget)
	s.execute(w, r, kindRefine, key, req.TimeoutMS, func(ctx context.Context) (any, error) {
		cc, err := gcl.CompileProgram("concrete", concrete)
		if err != nil {
			return nil, badRequest("concrete: %v", err)
		}
		ca, err := gcl.CompileProgram("abstract", abstract)
		if err != nil {
			return nil, badRequest("abstract: %v", err)
		}
		if !cc.Space.SameShape(ca.Space) {
			return nil, badRequest("programs declare different state spaces; refine requires a shared space")
		}
		g := mc.NewGas(ctx, budget)
		vInit, err := core.RefinementInitGas(g, cc.System, ca.System, nil)
		if err != nil {
			return nil, err
		}
		vEvery, err := core.EverywhereRefinementGas(g, cc.System, ca.System, nil)
		if err != nil {
			return nil, err
		}
		vConv, err := core.ConvergenceRefinementGas(g, cc.System, ca.System, nil)
		if err != nil {
			return nil, err
		}
		vStab, err := core.StabilizingGas(g, cc.System, ca.System, nil)
		if err != nil {
			return nil, err
		}
		resp := RefineResponse{
			Concrete:       fpC,
			Abstract:       fpA,
			States:         cc.System.NumStates(),
			RefinementInit: verdictJSON(vInit, cc.System),
			Everywhere:     verdictJSON(vEvery, cc.System),
			Convergence:    verdictJSON(vConv.Verdict, cc.System),
			Stabilizing:    verdictJSON(vStab.Verdict, cc.System),
			ElapsedUS:      time.Since(started).Microseconds(),
		}
		resp.Holds = vInit.Holds && vEvery.Holds && vConv.Holds && vStab.Holds
		return resp, nil
	})
}

func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	s.recordRequest(kindLint)
	var req LintRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeComputeError(w, err)
		return
	}
	prog, err := s.parseProgram("source", req.Source)
	if err != nil {
		s.writeComputeError(w, err)
		return
	}
	fp := gcl.Fingerprint(prog)
	// Unlike the verdict endpoints, lint results depend on the analyzer
	// set, so the cache key carries its version: upgrading the engine
	// naturally invalidates stale entries.
	key := cache.Key(kindLint, fp, analysis.Version())
	if s.serveFromCache(w, key, started) {
		return
	}
	budget := s.resolveBudget(req.Budget)
	s.execute(w, r, kindLint, key, req.TimeoutMS, func(ctx context.Context) (any, error) {
		res, err := analysis.Analyze(prog, analysis.Options{
			Exact:           true,
			ExactStateLimit: s.cfg.MaxStates,
			Gas:             mc.NewGas(ctx, budget),
		})
		if err != nil {
			return nil, badRequest("source: %v", err)
		}
		diags := res.Diags
		if diags == nil {
			diags = []analysis.Diag{} // a clean program lints to [], not null
		}
		return LintResponse{
			Program:         fp,
			States:          res.States,
			Exact:           res.Exact,
			AnalyzerVersion: analysis.Version(),
			Errors:          analysis.ErrorCount(diags),
			Diags:           diags,
			ElapsedUS:       time.Since(started).Microseconds(),
		}, nil
	})
}

// ringsim admission bounds: a request is a (runs × steps) workload, so
// both factors are capped to keep one request from monopolizing a worker
// beyond what its deadline would cut off anyway.
const (
	maxRingsimProcs = 10_000
	maxRingsimRuns  = 100_000
	maxRingsimSteps = 10_000_000
)

func (s *Server) handleRingsim(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	s.recordRequest(kindRingsim)
	var req RingsimRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeComputeError(w, err)
		return
	}
	if req.Daemon == "" {
		req.Daemon = "random"
	}
	if req.Faults == 0 {
		req.Faults = 3
	}
	if req.Steps == 0 {
		req.Steps = 100_000
	}
	if req.Runs == 0 {
		req.Runs = 10
	}
	if req.Procs < 3 || req.Procs > maxRingsimProcs {
		s.writeComputeError(w, badRequest("procs must be in [3, %d], got %d", maxRingsimProcs, req.Procs))
		return
	}
	if req.K == 0 {
		req.K = req.Procs
	}
	if req.K < 1 {
		s.writeComputeError(w, badRequest("k must be ≥ 1, got %d", req.K))
		return
	}
	if req.Runs < 1 || req.Runs > maxRingsimRuns {
		s.writeComputeError(w, badRequest("runs must be in [1, %d], got %d", maxRingsimRuns, req.Runs))
		return
	}
	if req.Steps < 1 || req.Steps > maxRingsimSteps {
		s.writeComputeError(w, badRequest("steps must be in [1, %d], got %d", maxRingsimSteps, req.Steps))
		return
	}
	if req.Faults < 0 || req.Faults > req.Procs {
		s.writeComputeError(w, badRequest("faults must be in [0, procs], got %d", req.Faults))
		return
	}

	var proto sim.Protocol
	switch req.Family {
	case "dijkstra3":
		proto = sim.NewDijkstra3(req.Procs)
	case "dijkstra4":
		proto = sim.NewDijkstra4(req.Procs)
	case "kstate":
		proto = sim.NewKState(req.Procs, req.K)
	case "newthree":
		proto = sim.NewNewThree(req.Procs)
	default:
		s.writeComputeError(w, badRequest("unknown family %q (want dijkstra3 | dijkstra4 | kstate | newthree)", req.Family))
		return
	}
	mkDaemon := func(run int) sim.Daemon {
		switch req.Daemon {
		case "random":
			return sim.NewRandomDaemon(req.Seed + int64(run))
		case "roundrobin":
			return sim.NewRoundRobinDaemon(proto.Procs())
		case "greedy":
			return sim.NewGreedyDaemon(proto)
		default:
			return nil
		}
	}
	if mkDaemon(0) == nil {
		s.writeComputeError(w, badRequest("unknown daemon %q (want random | roundrobin | greedy)", req.Daemon))
		return
	}

	key := cache.Key(kindRingsim, req.Family, req.Daemon,
		fmt.Sprint(req.Procs), fmt.Sprint(req.K), fmt.Sprint(req.Seed),
		fmt.Sprint(req.Faults), fmt.Sprint(req.Steps), fmt.Sprint(req.Runs))
	if s.serveFromCache(w, key, started) {
		return
	}
	s.execute(w, r, kindRingsim, key, req.TimeoutMS, func(ctx context.Context) (any, error) {
		stats, err := sim.MeasureConvergenceCtx(ctx, proto, mkDaemon,
			req.Runs, req.Faults, req.Steps, req.Seed)
		if err != nil {
			return nil, err
		}
		return RingsimResponse{
			Protocol:  proto.Name(),
			Daemon:    req.Daemon,
			Runs:      stats.Runs,
			Converged: stats.Converged,
			MeanSteps: stats.MeanSteps,
			MaxSteps:  stats.MaxSteps,
			Faults:    req.Faults,
			ElapsedUS: time.Since(started).Microseconds(),
		}, nil
	})
}
