package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestKeyInjective(t *testing.T) {
	if Key("selfstab", "ab", "c") == Key("selfstab", "a", "bc") {
		t.Fatal("length prefixing failed: concatenation ambiguity")
	}
	if Key("selfstab", "p") == Key("refine", "p") {
		t.Fatal("kind does not separate keys")
	}
	if Key("k", "p") != Key("k", "p") {
		t.Fatal("key is not deterministic")
	}
	if len(Key("k")) != 64 {
		t.Fatalf("key is not hex SHA-256: %q", Key("k"))
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("c", 3) // evicts b (least recently used; a was just touched)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatal("a lost")
	}
	if v, ok := c.Get("c"); !ok || v.(int) != 3 {
		t.Fatal("c lost")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 3 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 3/1", hits, misses)
	}
}

func TestCacheRePutRefreshes(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // refresh: a becomes most recent
	c.Put("c", 3)  // evicts b
	if v, ok := c.Get("a"); !ok || v.(int) != 10 {
		t.Fatal("refreshed value lost")
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := New(0)
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache stored a value")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%100)
				c.Put(k, i)
				c.Get(k)
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("capacity exceeded: %d", c.Len())
	}
}
