// Package cache is checkd's content-addressed verdict cache: a
// fixed-capacity LRU keyed on the SHA-256 of the canonicalized inputs of
// a check. The decision procedures are pure functions of their inputs, so
// a key collision-free address is a correctness-preserving memoization —
// two requests with the same canonical program text and check kind get
// the same verdict without re-enumerating the state space.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"
)

// Key builds a content address from a check kind and the canonical forms
// of its inputs. Each part is length-prefixed before hashing so that the
// concatenation is injective ("ab"+"c" and "a"+"bc" address differently).
func Key(kind string, parts ...string) string {
	h := sha256.New()
	var lenBuf [8]byte
	write := func(s string) {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(s)))
		h.Write(lenBuf[:])
		h.Write([]byte(s))
	}
	write(kind)
	for _, p := range parts {
		write(p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Cache is a goroutine-safe LRU with hit/miss counters. Values are
// treated as immutable: callers must not mutate what they Put or Get.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	hits     uint64
	misses   uint64
}

type entry struct {
	key string
	val any
}

// New builds a cache bounded to capacity entries. capacity ≤ 0 disables
// caching (every Get misses, Put is a no-op) — useful for benchmarking
// the uncached path without special-casing callers.
func New(capacity int) *Cache {
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the cached value for key and marks it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put stores val under key, evicting the least recently used entry when
// the cache is full. Re-putting an existing key refreshes its value and
// recency.
func (c *Cache) Put(key string, val any) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, val: val})
	if c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry).key)
	}
}

// Entry is one cache entry as exposed by Entries for persistence.
type Entry struct {
	Key string
	Val any
}

// Entries snapshots the cache from least to most recently used, so a
// reload that Puts them in order reconstructs the recency order.
func (c *Cache) Entries() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry, 0, c.ll.Len())
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		out = append(out, Entry{Key: e.key, Val: e.val})
	}
	return out
}

// Len returns the current number of entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// PutCold inserts val under key at the cold (least recently used) end
// of the LRU, and only into spare capacity: if the key is already
// present or the cache is full, PutCold is a no-op returning false.
// Anti-entropy sync uses it so replicated entries fill idle capacity
// without evicting — or even refreshing — entries earned by this
// cache's own traffic; a later Get promotes a cold entry normally.
func (c *Cache) PutCold(key string, val any) bool {
	if c.capacity <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.items[key]; ok {
		return false
	}
	if c.ll.Len() >= c.capacity {
		return false
	}
	c.items[key] = c.ll.PushBack(&entry{key: key, val: val})
	return true
}
