// Package service is checkd: a long-running HTTP/JSON verification
// daemon over the repository's decision procedures. It exposes the gclc
// verdict battery (POST /v1/selfstab, POST /v1/refine), the ring
// simulator (POST /v1/ringsim), the message-passing cluster runtime
// (POST /v1/cluster), the chaos campaign engine (POST /v1/chaos), the
// static analyzer (POST /v1/lint), and operational endpoints
// (GET /healthz, GET /metrics).
//
// Three layers sit under the handlers:
//
//   - a content-addressed verdict cache (internal/service/cache): the
//     checks are pure functions of their canonicalized inputs, so the
//     SHA-256 of the printed program plus the check kind addresses a
//     verdict exactly;
//   - a bounded worker pool: a fixed number of verification goroutines
//     behind a bounded queue, with 429 on overflow — admission control
//     instead of unbounded memory growth;
//   - cancellation plumbing: every check runs under an mc.Gas carrying
//     the request deadline and a step budget, so a timed-out or
//     abandoned request stops burning CPU mid-sweep.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/journal"
	"repro/internal/mc"
	"repro/internal/service/cache"
)

// Config sizes the server. Zero values mean "use the default".
type Config struct {
	// Workers is the number of verification goroutines
	// (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of requests waiting for a worker;
	// submissions beyond it are rejected with 429 (default 64).
	QueueDepth int
	// CacheEntries bounds the verdict cache (default 4096; < 0 disables
	// caching).
	CacheEntries int
	// DefaultTimeout applies to requests that carry no timeout_ms
	// (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-request timeout_ms (default 5m).
	MaxTimeout time.Duration
	// DefaultBudget is the per-request enumeration step budget when the
	// request carries no budget (default 50M; < 0 means unlimited).
	DefaultBudget int64
	// MaxStates rejects programs whose declared state space exceeds this
	// size before any enumeration happens (default 1<<20).
	MaxStates int
	// CachePath, when non-empty, persists the verdict cache to this file:
	// it is loaded on New (corrupt entries are skipped and counted in
	// /metrics, never a startup failure), snapshotted every
	// CacheSnapshotInterval, and snapshotted once more on Close.
	CachePath string
	// CacheSnapshotInterval is the background snapshot period
	// (default 30s; only meaningful with CachePath).
	CacheSnapshotInterval time.Duration
	// Logf, when non-nil, receives structured job log lines (worker-pool
	// job start/finish, each carrying the request id) so one id traces a
	// request across handlers, queueing, and fleet forward hops. It must
	// be safe for concurrent use; nil disables job logging.
	Logf func(format string, args ...any)
	// JournalPath, when non-empty, event-sources the server through an
	// append-only journal at this file: requests, outcomes, verdicts,
	// and campaign summaries become typed events, and the verdict
	// cache, /metrics counters, and campaign summary are derived by
	// replayable projections (see journal.go). Startup replays the
	// journal before /readyz reports ready.
	JournalPath string
	// JournalBackend supplies the journal's storage directly (tests,
	// fleet replicas); it takes precedence over JournalPath.
	JournalBackend journal.Backend
	// JournalMaxBatch caps one group commit (default
	// journal.DefaultMaxBatch).
	JournalMaxBatch int
	// JournalMaxLag bounds how far the slowest projection may trail the
	// journal before appends block (default journal.DefaultMaxLag).
	JournalMaxLag int
	// JournalMaxBytes, when > 0, bounds the journal file's size: past the
	// budget the server compacts the prefix covered by cache snapshots
	// and, if compaction cannot reclaim enough, degrades append admission
	// (backpressure, then shedding async events — see
	// journal.Options.MaxBytes). Requires a replace-capable backend
	// (JournalPath gives one) and, for the degradation ladder to recover,
	// CachePath (snapshots are what advance the compaction horizon).
	JournalMaxBytes int64
	// JournalCheckpointInterval is how often the retention loop snapshots
	// the cache and publishes the covered sequence to the journal
	// (default 2s; only meaningful with JournalMaxBytes).
	JournalCheckpointInterval time.Duration
	// ResilienceMetrics, when non-nil, supplies the fleet routing
	// layer's breaker/hedge/budget counters for the /metrics "fleet"
	// section. The fleet installs it (the service never imports the
	// fleet); it must be safe for concurrent use.
	ResilienceMetrics func() *FleetResilienceSnapshot
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.DefaultBudget == 0 {
		c.DefaultBudget = 50_000_000
	}
	if c.MaxStates <= 0 {
		c.MaxStates = 1 << 20
	}
	if c.CacheSnapshotInterval <= 0 {
		c.CacheSnapshotInterval = 30 * time.Second
	}
	if c.JournalCheckpointInterval <= 0 {
		c.JournalCheckpointInterval = 2 * time.Second
	}
	return c
}

// Server is the checkd HTTP handler. Construct with New, dispose with
// Close.
type Server struct {
	cfg     Config
	pool    *pool
	cache   *cache.Cache
	metrics *metrics
	mux     *http.ServeMux
	start   time.Time
	reqSeq  atomic.Uint64 // request-id sequence

	// persister owns the on-disk cache snapshot; nil when Config.CachePath
	// is empty.
	persister *cachePersister
	// journal event-sources the server; nil without Config.JournalPath /
	// JournalBackend (see journal.go).
	journal *serverJournal
	// draining flips once BeginDrain is called; /readyz reports 503 from
	// then on so load balancers stop routing before the listener closes.
	draining atomic.Bool

	// gate, when non-nil, is received from at the start of every
	// verification job. Tests use it to hold workers busy
	// deterministically; production servers leave it nil.
	gate chan struct{}
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		pool:    newPool(cfg.Workers, cfg.QueueDepth),
		cache:   cache.New(cfg.CacheEntries),
		metrics: newMetrics(kindSelfStab, kindRefine, kindRingsim, kindCluster, kindChaos, kindLint),
		mux:     http.NewServeMux(),
		start:   time.Now(),
	}
	if cfg.CachePath != "" {
		s.persister = newCachePersister(cfg.CachePath, cfg.CacheSnapshotInterval, s.cache)
	}
	if cfg.JournalBackend != nil || cfg.JournalPath != "" {
		// After the persister: the cache projection resumes from the
		// snapshot file's journal checkpoint.
		s.journal = newServerJournal(s, cfg)
	}
	s.mux.HandleFunc("POST /v1/selfstab", s.handleSelfStab)
	s.mux.HandleFunc("POST /v1/refine", s.handleRefine)
	s.mux.HandleFunc("POST /v1/ringsim", s.handleRingsim)
	s.mux.HandleFunc("POST /v1/cluster", s.handleCluster)
	s.mux.HandleFunc("POST /v1/chaos", s.handleChaos)
	s.mux.HandleFunc("POST /v1/lint", s.handleLint)
	s.mux.HandleFunc("POST /lint", s.handleLint) // unversioned alias
	s.mux.HandleFunc("GET /v1/journal", s.handleJournalRange)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ctxKey keys values this package stores in request contexts.
type ctxKey int

const ctxKeyRequestID ctxKey = iota

// requestIDFrom returns the request id stamped by ServeHTTP, or "" for
// contexts that never passed through it.
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// sanitizeRequestID accepts an inbound X-Request-Id only when it is
// short and printable-safe, so a hostile client cannot smuggle log-line
// noise or unbounded bytes through the tracing path.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.', c == ':':
		default:
			return ""
		}
	}
	return id
}

// ServeHTTP implements http.Handler. Every request gets a unique id
// (echoed in the X-Request-Id header and attached to error bodies, so a
// failure report can be matched to a server log line), and a panicking
// handler becomes a 500 JSON error carrying that id instead of a
// severed connection. A well-formed inbound X-Request-Id is adopted
// instead of replaced, so a fleet forward hop — or any upstream proxy —
// keeps one id attached to a request end-to-end.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := sanitizeRequestID(r.Header.Get("X-Request-Id"))
	if id == "" {
		id = fmt.Sprintf("req-%x-%d", s.start.UnixNano()&0xffffff, s.reqSeq.Add(1))
	}
	w.Header().Set("X-Request-Id", id)
	r = r.WithContext(context.WithValue(r.Context(), ctxKeyRequestID, id))
	defer func() {
		if v := recover(); v != nil {
			s.recordOutcome(statusInternal, "", 0, false)
			writeJSON(w, http.StatusInternalServerError, errorBody{
				Error: fmt.Sprintf("internal error in request %s: %v", id, v)})
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// BeginDrain marks the server as shutting down: /readyz starts
// answering 503 so load balancers pull the instance before the listener
// stops accepting. Request handling is unaffected — in-flight and
// still-arriving requests complete normally.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
}

// Close stops the worker pool (in-flight jobs finish first), drains the
// journal's projections and writer, and, when cache persistence is
// configured, takes the final cache snapshot — after the projections
// have converged, so the snapshot's journal checkpoint is final.
func (s *Server) Close() {
	s.draining.Store(true)
	s.pool.close()
	if s.journal != nil {
		s.journal.close()
	}
	if s.persister != nil {
		s.persister.close()
	}
}

// CacheStats reports the verdict cache's cumulative hit and miss
// counters (also available via GET /metrics).
func (s *Server) CacheStats() (hits, misses uint64) {
	return s.cache.Stats()
}

// logf emits one job log line when Config.Logf is set.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// requestError marks a client mistake (bad syntax, unknown family,
// oversized state space): a 400, not a 500.
type requestError struct{ err error }

func (e *requestError) Error() string { return e.err.Error() }
func (e *requestError) Unwrap() error { return e.err }

func badRequest(format string, args ...any) error {
	return &requestError{err: fmt.Errorf(format, args...)}
}

// errorBody is the JSON shape of every non-200 response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// RequestTimeout resolves a request's declared timeout_ms against the
// configured default and ceiling (defaults applied, so a zero Config
// works). It is exported for the fleet routing layer, whose deadline
// budgets must agree exactly with what the serving replica will
// enforce.
func (c Config) RequestTimeout(timeoutMS int64) time.Duration {
	c = c.withDefaults()
	d := c.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d > c.MaxTimeout {
		d = c.MaxTimeout
	}
	return d
}

// resolveTimeout turns a request's timeout_ms into a bounded duration.
func (s *Server) resolveTimeout(timeoutMS int64) time.Duration {
	return s.cfg.RequestTimeout(timeoutMS)
}

// resolveBudget turns a request's budget into the gas step budget.
func (s *Server) resolveBudget(budget int64) int64 {
	if budget > 0 && (s.cfg.DefaultBudget < 0 || budget < s.cfg.DefaultBudget) {
		return budget
	}
	return s.cfg.DefaultBudget
}

// outcome carries a job's result to the waiting handler.
type outcome struct {
	val any
	err error
}

// execute runs compute on the worker pool under the request's deadline
// and writes the HTTP response: 200 with the computed value (also cached
// under key when key != ""), 429 on queue overflow, 504 on deadline, 400
// on request errors, 422 on budget exhaustion.
func (s *Server) execute(w http.ResponseWriter, r *http.Request, kind, key string,
	timeoutMS int64, compute func(ctx context.Context) (any, error)) {
	started := time.Now()
	ctx, cancel := context.WithTimeout(r.Context(), s.resolveTimeout(timeoutMS))
	defer cancel()

	res := make(chan outcome, 1)
	j := &job{ctx: ctx, run: func(ctx context.Context) {
		if s.gate != nil {
			select {
			case <-s.gate:
			case <-ctx.Done():
				res <- outcome{err: ctx.Err()}
				return
			}
		}
		s.logf("job start kind=%s request=%s", kind, requestIDFrom(ctx))
		v, err := safeCompute(ctx, compute)
		status := "ok"
		if err != nil {
			status = "err"
		}
		s.logf("job done kind=%s request=%s status=%s elapsed_us=%d",
			kind, requestIDFrom(ctx), status, time.Since(started).Microseconds())
		res <- outcome{val: v, err: err}
	}}
	if !s.pool.submit(j) {
		s.recordOutcome(statusOverload, kind, 0, false)
		// Queue overflow is transient by construction — in-flight checks
		// finish in seconds — so tell well-behaved clients when to come
		// back instead of letting them hammer the queue.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{
			Error: fmt.Sprintf("verification queue is full (depth %d); retry later", s.cfg.QueueDepth)})
		return
	}

	select {
	case o := <-res:
		if o.err != nil {
			s.writeComputeError(w, o.err)
			return
		}
		if key != "" {
			// Durable before the response: a verdict the client sees is
			// a verdict the journal replays.
			s.recordVerdict(kind, key, o.val)
		}
		s.recordOutcome(statusOK, kind, time.Since(started), true)
		writeJSON(w, http.StatusOK, o.val)
	case <-ctx.Done():
		// The job either never started (skipped by the worker) or is
		// being cancelled through its gas meter right now. Like the 429
		// path, a deadline miss is transient — the next attempt may hit
		// the cache or an idle worker — so tell clients when to retry.
		s.recordOutcome(statusTimeout, kind, 0, false)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusGatewayTimeout, errorBody{
			Error: fmt.Sprintf("request did not finish within its deadline: %v", ctx.Err())})
	}
}

// safeCompute runs one check, converting a panic into an error so a
// buggy checker costs its request a 500 — carrying the request id for
// log correlation — instead of the whole process.
func safeCompute(ctx context.Context, compute func(ctx context.Context) (any, error)) (v any, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("check panicked: %v (request %s)", p, requestIDFrom(ctx))
		}
	}()
	return compute(ctx)
}

func (s *Server) writeComputeError(w http.ResponseWriter, err error) {
	var re *requestError
	switch {
	case errors.As(err, &re):
		s.recordOutcome(statusBadRequest, "", 0, false)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: re.Error()})
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		s.recordOutcome(statusTimeout, "", 0, false)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: "request did not finish within its deadline: " + err.Error()})
	case errors.Is(err, mc.ErrBudgetExhausted):
		s.recordOutcome(statusBadRequest, "", 0, false)
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{Error: err.Error()})
	default:
		s.recordOutcome(statusInternal, "", 0, false)
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

// cachedResponse is implemented by every cacheable response type: it
// returns a copy marked as served from cache, so the stored value stays
// immutable.
type cachedResponse interface {
	asCached(elapsed time.Duration) any
}

// serveFromCache answers from the verdict cache if possible.
func (s *Server) serveFromCache(w http.ResponseWriter, key string, started time.Time) bool {
	v, ok := s.cache.Get(key)
	if !ok {
		return false
	}
	s.recordOutcome(statusOK, "", 0, false)
	writeJSON(w, http.StatusOK, v.(cachedResponse).asCached(time.Since(started)))
	return true
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

// readyHighWater is the queue-depth fraction past which /readyz reports
// not-ready: at three quarters full the instance still answers, but a
// balancer should prefer peers with headroom before overflow turns into
// 429s.
func (s *Server) readyHighWater() int64 {
	hw := int64(s.cfg.QueueDepth) * 3 / 4
	if hw < 1 {
		hw = 1
	}
	return hw
}

// handleReadyz is readiness, distinct from /healthz liveness: a healthy
// process stops being ready while draining for shutdown or when the
// verification queue is saturated past the high-water mark.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	depth := s.pool.depth.Load()
	switch {
	case s.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "draining",
		})
	case s.journal != nil && !s.journal.ready.Load():
		// Startup is replay: the projections have not yet converged on
		// the journaled history, so the cache and counters are behind
		// what this instance has already acknowledged.
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":         "replaying",
			"journal_seq":    s.journal.j.LastSeq(),
			"projection_lag": s.journal.engine.Lags(),
		})
	case depth >= s.readyHighWater():
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":      "saturated",
			"queue_depth": depth,
			"high_water":  s.readyHighWater(),
		})
	default:
		writeJSON(w, http.StatusOK, map[string]any{
			"status":      "ready",
			"queue_depth": depth,
		})
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var snap MetricsSnapshot
	snap.UptimeSeconds = time.Since(s.start).Seconds()
	snap.Requests = make(map[string]int64, len(s.metrics.requests))
	for k, c := range s.metrics.requests {
		snap.Requests[k] = c.Load()
	}
	snap.Responses.OK = s.metrics.ok.Load()
	snap.Responses.BadRequest = s.metrics.badRequest.Load()
	snap.Responses.Timeout = s.metrics.timeout.Load()
	snap.Responses.Overload = s.metrics.overload.Load()
	snap.Responses.Internal = s.metrics.internal.Load()
	snap.Cache.Hits, snap.Cache.Misses = s.cache.Stats()
	snap.Cache.Entries = s.cache.Len()
	if s.persister != nil {
		snap.Cache.Persist = s.persister.metricsSnapshot()
	}
	snap.Queue.Depth = s.pool.depth.Load()
	snap.Queue.Capacity = s.cfg.QueueDepth
	snap.Queue.InFlight = s.pool.inFlight.Load()
	snap.Queue.Workers = s.cfg.Workers
	snap.Queue.Panics = s.pool.panics.Load()
	snap.Latency = make(map[string]HistogramSnapshot, len(s.metrics.latency))
	for k, h := range s.metrics.latency {
		snap.Latency[k] = h.snapshot()
	}
	if s.journal != nil {
		snap.Journal = s.journal.metricsSnapshot()
	}
	if s.cfg.ResilienceMetrics != nil {
		snap.Fleet = s.cfg.ResilienceMetrics()
	}
	writeJSON(w, http.StatusOK, snap)
}
