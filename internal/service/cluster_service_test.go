package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestServiceCluster submits the golden fault episode over HTTP: the
// run converges, records both stabilizations (perturbed start and the
// injected corruption), and an identical resubmission is answered from
// the verdict cache.
func TestServiceCluster(t *testing.T) {
	svc := New(Config{Workers: 2, QueueDepth: 16, CacheEntries: 16})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	req := ClusterRequest{Family: "dijkstra3", Procs: 5, Seed: 6, Steps: 2000,
		Schedule: "corrupt@40:node=1,val=0", SnapshotEvery: 20}
	resp, body := postJSON(t, ts.URL+"/v1/cluster", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got ClusterResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Converged {
		t.Fatalf("episode did not converge: %s", body)
	}
	if got.Transport != "chan" {
		t.Fatalf("transport %q, want chan", got.Transport)
	}
	if len(got.Stabilizations) == 0 {
		t.Fatalf("no stabilizations recorded: %s", body)
	}
	sawFault := false
	for _, ev := range got.Events {
		if ev.Kind == "fault" && ev.Node == 1 {
			sawFault = true
		}
	}
	if !sawFault {
		t.Fatalf("fault event missing from stream: %s", body)
	}
	if got.Cached {
		t.Fatal("first submission cannot be cached")
	}

	resp, body = postJSON(t, ts.URL+"/v1/cluster", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var again ClusterResponse
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatalf("identical episode not served from cache: %s", body)
	}
	if again.Steps != got.Steps || again.Moves != got.Moves {
		t.Fatalf("cached result diverges: %+v vs %+v", again, got)
	}
}

// TestServiceClusterBadRequests: malformed parameters and schedules are
// client errors, rejected before a worker is committed.
func TestServiceClusterBadRequests(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 4, CacheEntries: 4})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	cases := []struct {
		name string
		req  ClusterRequest
	}{
		{"unknown family", ClusterRequest{Family: "nope", Procs: 5}},
		{"too few procs", ClusterRequest{Family: "dijkstra3", Procs: 2}},
		{"too many procs", ClusterRequest{Family: "dijkstra3", Procs: maxClusterProcs + 1}},
		{"negative steps", ClusterRequest{Family: "dijkstra3", Procs: 5, Steps: -1}},
		{"negative faults", ClusterRequest{Family: "dijkstra3", Procs: 5, Faults: -1}},
		{"faults above procs", ClusterRequest{Family: "dijkstra3", Procs: 5, Faults: 6}},
		{"negative snapshot", ClusterRequest{Family: "dijkstra3", Procs: 5, SnapshotEvery: -1}},
		{"bad schedule syntax", ClusterRequest{Family: "dijkstra3", Procs: 5, Schedule: "meteor@9"}},
		{"schedule node out of range", ClusterRequest{Family: "dijkstra3", Procs: 5, Schedule: "corrupt@10:node=7"}},
		{"bad kstate domain", ClusterRequest{Family: "kstate", Procs: 5, K: -1}},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/cluster", tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, resp.StatusCode, body)
		}
	}
	snap := fetchMetrics(t, ts.URL)
	if snap.Responses.BadRequest != int64(len(cases)) {
		t.Fatalf("bad-request counter = %d, want %d", snap.Responses.BadRequest, len(cases))
	}
}

// TestServiceClusterOverflow mirrors TestServiceOverflow for the
// cluster endpoint: with the single worker and the one queue slot held,
// the next episode is rejected with 429 instead of queuing unboundedly.
func TestServiceClusterOverflow(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 1, CacheEntries: 16})
	gate := make(chan struct{})
	svc.gate = gate
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	defer release()

	// Distinct seeds keep the held requests from colliding in the cache.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := postJSON(t, ts.URL+"/v1/cluster",
				ClusterRequest{Family: "dijkstra3", Procs: 4, Seed: int64(i), Faults: 2, TimeoutMS: 30_000})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("held request %d finished with %d", i, resp.StatusCode)
			}
		}(i)
		if i == 0 {
			waitFor(t, func() bool { return svc.pool.inFlight.Load() == 1 })
		} else {
			waitFor(t, func() bool { return svc.pool.depth.Load() == 1 })
		}
	}

	resp, body := postJSON(t, ts.URL+"/v1/cluster",
		ClusterRequest{Family: "dijkstra3", Procs: 4, Seed: 99, Faults: 2, TimeoutMS: 30_000})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("429 without a usable Retry-After header: %q", ra)
	}

	release()
	wg.Wait()

	snap := fetchMetrics(t, ts.URL)
	if snap.Responses.Overload == 0 {
		t.Fatal("overload counter did not increment")
	}
}

// TestServiceClusterTimeout mirrors TestServiceTimeout: a cluster
// request with a tiny deadline behind a held worker gets a prompt 504 —
// the episode's context is cancelled, it does not burn the budget.
func TestServiceClusterTimeout(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 8, CacheEntries: 16})
	gate := make(chan struct{})
	svc.gate = gate
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	defer release()

	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		postJSON(t, ts.URL+"/v1/cluster",
			ClusterRequest{Family: "dijkstra3", Procs: 4, Seed: 1, Faults: 2, TimeoutMS: 30_000})
	}()
	waitFor(t, func() bool { return svc.pool.inFlight.Load() == 1 })

	resp, body := postJSON(t, ts.URL+"/v1/cluster",
		ClusterRequest{Family: "dijkstra3", Procs: 4, Seed: 2, Faults: 2, TimeoutMS: 50})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
	var e errorBody
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("timeout error body malformed: %s", body)
	}

	release()
	<-blockerDone

	snap := fetchMetrics(t, ts.URL)
	if snap.Responses.Timeout == 0 {
		t.Fatal("timeout counter did not increment")
	}
}

// TestServiceClusterCrashPersist: a crash episode with persistence and
// a hostile disk over HTTP — the response carries the recovered event
// and the storage stats, and the run is served from cache on
// resubmission.
func TestServiceClusterCrashPersist(t *testing.T) {
	svc := New(Config{Workers: 2, QueueDepth: 16, CacheEntries: 16})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	req := ClusterRequest{Family: "dijkstra3", Procs: 5, Seed: 11, Steps: 2000,
		Schedule: "crash@50:node=2", Persist: true, PersistEvery: 2,
		StorageFaultEvery: 3, StorageFaultKinds: []string{"bitflip", "stale"}}
	resp, body := postJSON(t, ts.URL+"/v1/cluster", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got ClusterResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Converged {
		t.Fatalf("crash episode did not converge: %s", body)
	}
	sawCrash, sawRecovered := false, false
	for _, ev := range got.Events {
		switch ev.Kind {
		case "crashed":
			sawCrash = true
		case "recovered":
			if ev.From == "" {
				t.Fatalf("recovered event without a source: %+v", ev)
			}
			sawRecovered = true
		}
	}
	if !sawCrash || !sawRecovered {
		t.Fatalf("crash/recovered events missing (crash=%v recovered=%v): %s", sawCrash, sawRecovered, body)
	}
	if got.Storage == nil || got.Storage.Saves == 0 {
		t.Fatalf("storage stats missing: %s", body)
	}

	resp, body = postJSON(t, ts.URL+"/v1/cluster", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var again ClusterResponse
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatalf("identical crash episode not served from cache: %s", body)
	}

	// The persistence knobs are admission-checked.
	for name, bad := range map[string]ClusterRequest{
		"storage faults without persist": {Family: "dijkstra3", Procs: 5, StorageFaultEvery: 2},
		"unknown storage fault kind":     {Family: "dijkstra3", Procs: 5, Persist: true, StorageFaultEvery: 2, StorageFaultKinds: []string{"gremlin"}},
		"negative persist interval":      {Family: "dijkstra3", Procs: 5, Persist: true, PersistEvery: -1},
	} {
		resp, body := postJSON(t, ts.URL+"/v1/cluster", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", name, resp.StatusCode, body)
		}
	}
}
