package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster/store"
	"repro/internal/service/cache"
)

// Cache persistence: checkd snapshots its verdict cache to a single file
// so a restart serves prior verdicts as cache hits instead of re-running
// every check. The file is a stream of store.EncodeRecord frames (the
// same checksummed framing the cluster snapshot store uses), one per
// cache entry, each wrapping a kind-tagged JSON payload. The framing
// buys the same property it buys node snapshots: arbitrary bytes either
// decode to exactly what was written or fail loudly, and a loader can
// resynchronize past a corrupt record via the magic instead of
// abandoning the rest of the file. A corrupted cache costs cache misses,
// never a failed startup and never a wrong verdict.

// persistedEntry is the JSON payload inside one cache record. Kind
// selects the concrete response type on reload — the cache stores typed
// structs (serveFromCache asserts cachedResponse), so a reload must
// re-materialize the same types, not map[string]any. The same shape is
// the payload of a journal verdict event (journal.go), so snapshot,
// anti-entropy, and journal replay share one codec.
type persistedEntry struct {
	Kind  string          `json:"kind"`
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// kindJournalCheckpoint tags the snapshot file's leading checkpoint
// record: the journal sequence number the snapshot reflects, so a
// restart replays only the journal tail above it. Pre-journal snapshot
// files simply lack the record (checkpoint 0 = full replay), and a
// pre-journal build reading a new file skips it as an unknown kind.
const kindJournalCheckpoint = "journal-checkpoint"

// cacheEntryKind names the persistable kind of a cached value. Values of
// unknown types (never produced by the handlers) are reported as not
// persistable and skipped at save time.
func cacheEntryKind(v any) (string, bool) {
	switch v.(type) {
	case SelfStabResponse:
		return kindSelfStab, true
	case RefineResponse:
		return kindRefine, true
	case RingsimResponse:
		return kindRingsim, true
	case LintResponse:
		return kindLint, true
	case ClusterResponse:
		return kindCluster, true
	case ChaosResponse:
		return kindChaos, true
	}
	return "", false
}

// decodeCachedValue re-materializes one persisted value as the concrete
// response type for its kind. Decoding is strict: a payload with fields
// the current schema does not know (written by a different build) is
// rejected rather than loaded half-blank, because a stale-schema verdict
// served as a cache hit would be silently wrong.
func decodeCachedValue(kind string, raw json.RawMessage) (any, error) {
	var v any
	switch kind {
	case kindSelfStab:
		v = &SelfStabResponse{}
	case kindRefine:
		v = &RefineResponse{}
	case kindRingsim:
		v = &RingsimResponse{}
	case kindLint:
		v = &LintResponse{}
	case kindCluster:
		v = &ClusterResponse{}
	case kindChaos:
		v = &ChaosResponse{}
	default:
		return nil, fmt.Errorf("unknown cache entry kind %q", kind)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return nil, err
	}
	// The cache holds the response structs by value (that is what the
	// handlers Put and what asCached's value receiver expects), so
	// dereference before returning.
	switch t := v.(type) {
	case *SelfStabResponse:
		return *t, nil
	case *RefineResponse:
		return *t, nil
	case *RingsimResponse:
		return *t, nil
	case *LintResponse:
		return *t, nil
	case *ClusterResponse:
		return *t, nil
	default:
		return *v.(*ChaosResponse), nil
	}
}

// encodeCacheEntries renders a cache snapshot as a record stream,
// prefixed by a journal-checkpoint record when ckpt > 0. The entries
// arrive least recently used first (cache.Entries' order), so a reload
// that Puts them in sequence reconstructs the recency order. The
// record generation is the 1-based position — not load-bearing, but it
// makes a hexdump of the file navigable.
func encodeCacheEntries(ckpt uint64, entries []cache.Entry) []byte {
	var buf bytes.Buffer
	if ckpt > 0 {
		seq, _ := json.Marshal(ckpt)
		payload, err := json.Marshal(persistedEntry{
			Kind: kindJournalCheckpoint, Key: kindJournalCheckpoint, Value: seq})
		if err == nil {
			buf.Write(store.EncodeRecord(ckpt, payload))
		}
	}
	for i, e := range entries {
		kind, ok := cacheEntryKind(e.Val)
		if !ok {
			continue
		}
		val, err := json.Marshal(e.Val)
		if err != nil {
			continue
		}
		payload, err := json.Marshal(persistedEntry{Kind: kind, Key: e.Key, Value: val})
		if err != nil {
			continue
		}
		buf.Write(store.EncodeRecord(uint64(i+1), payload))
	}
	return buf.Bytes()
}

// decodeCacheEntries walks a record stream, returning every entry that
// survives framing, JSON, and kind checks, the journal checkpoint (0
// when the stream carries none), plus the count of records skipped as
// corrupt or incompatible. A bad record costs only itself: the loader
// resyncs to the next magic and keeps going.
func decodeCacheEntries(b []byte) (entries []cache.Entry, ckpt uint64, skipped int64) {
	for len(b) > 0 {
		_, payload, rest, err := store.DecodeRecord(b)
		if err != nil {
			skipped++
			if i := store.NextMagic(b); i > 0 {
				b = b[i:]
				continue
			}
			break
		}
		b = rest
		var pe persistedEntry
		if err := json.Unmarshal(payload, &pe); err != nil || pe.Key == "" {
			skipped++
			continue
		}
		if pe.Kind == kindJournalCheckpoint {
			var seq uint64
			if json.Unmarshal(pe.Value, &seq) == nil && seq > ckpt {
				ckpt = seq
			}
			continue
		}
		val, err := decodeCachedValue(pe.Kind, pe.Value)
		if err != nil {
			skipped++
			continue
		}
		entries = append(entries, cache.Entry{Key: pe.Key, Val: val})
	}
	return entries, ckpt, skipped
}

// cachePersister owns the cache file: it loads it once at construction,
// snapshots on a ticker, and snapshots a final time on close so a
// graceful shutdown never loses the working set.
type cachePersister struct {
	path     string
	interval time.Duration
	c        *cache.Cache

	loaded     atomic.Int64 // entries restored at boot
	skipped    atomic.Int64 // corrupt/incompatible records dropped at boot
	saves      atomic.Int64 // successful snapshots
	saveErrors atomic.Int64 // failed snapshots

	// loadedCheckpoint is the journal checkpoint read from the file at
	// boot; the cache projection resumes replay just above it.
	loadedCheckpoint atomic.Uint64
	// journalSeq, when set (atomically, before the first snapshot
	// fires), reports the cache projection's current checkpoint so each
	// snapshot records how much journal it reflects.
	journalSeq atomic.Value // func() uint64

	// snapMu serializes snapshot writers: the interval loop, the journal
	// retention checkpoint loop, and the shutdown snapshot may race.
	snapMu sync.Mutex

	stop     chan struct{}
	done     chan struct{}
	closeOne sync.Once
}

// newCachePersister loads path into c (tolerating a missing or corrupted
// file) and starts the snapshot loop. It never fails: persistence
// problems degrade to an empty cache, not a dead server.
func newCachePersister(path string, interval time.Duration, c *cache.Cache) *cachePersister {
	p := &cachePersister{
		path:     path,
		interval: interval,
		c:        c,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	p.load()
	go p.loop()
	return p
}

func (p *cachePersister) load() {
	b, err := os.ReadFile(p.path)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			// Unreadable counts as one skipped "record": the file existed
			// and contributed nothing, which /metrics should show.
			p.skipped.Add(1)
		}
		return
	}
	entries, ckpt, skipped := decodeCacheEntries(b)
	for _, e := range entries {
		p.c.Put(e.Key, e.Val)
	}
	p.loaded.Store(int64(len(entries)))
	p.skipped.Store(skipped)
	p.loadedCheckpoint.Store(ckpt)
}

// setJournalSeq wires the cache projection's checkpoint reader in.
func (p *cachePersister) setJournalSeq(fn func() uint64) {
	p.journalSeq.Store(fn)
}

func (p *cachePersister) loop() {
	defer close(p.done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.snapshot()
		case <-p.stop:
			return
		}
	}
}

// snapshot writes the current cache to the file via write-temp + atomic
// rename, so a crash mid-snapshot leaves the previous file intact. The
// journal checkpoint is captured *before* the entries: entries applied
// in between are both in the snapshot and above the recorded
// checkpoint, and the cache projection's replay re-put is idempotent —
// overlap is stuttering, loss would not be. It returns the checkpoint
// the written snapshot covers and whether the write landed — the
// journal retention loop turns a true return into SetCovered(ckpt).
func (p *cachePersister) snapshot() (uint64, bool) {
	p.snapMu.Lock()
	defer p.snapMu.Unlock()
	var ckpt uint64
	if fn, ok := p.journalSeq.Load().(func() uint64); ok {
		ckpt = fn()
	}
	data := encodeCacheEntries(ckpt, p.c.Entries())
	tmp := p.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		p.saveErrors.Add(1)
		return 0, false
	}
	if err := os.Rename(tmp, p.path); err != nil {
		p.saveErrors.Add(1)
		return 0, false
	}
	p.saves.Add(1)
	return ckpt, true
}

// close stops the loop and takes the shutdown snapshot. Idempotent.
func (p *cachePersister) close() {
	p.closeOne.Do(func() {
		close(p.stop)
		<-p.done
		p.snapshot()
	})
}

// CachePersistSnapshot is the /metrics view of cache persistence.
type CachePersistSnapshot struct {
	Loaded         int64 `json:"loaded"`
	SkippedCorrupt int64 `json:"skipped_corrupt"`
	Saves          int64 `json:"saves"`
	SaveErrors     int64 `json:"save_errors"`
}

func (p *cachePersister) metricsSnapshot() *CachePersistSnapshot {
	return &CachePersistSnapshot{
		Loaded:         p.loaded.Load(),
		SkippedCorrupt: p.skipped.Load(),
		Saves:          p.saves.Load(),
		SaveErrors:     p.saveErrors.Load(),
	}
}
