package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestServiceChaos submits a small campaign over HTTP: every episode
// recovers, the report carries MTTR percentiles and per-kind stats, and
// an identical resubmission is answered from the verdict cache.
func TestServiceChaos(t *testing.T) {
	svc := New(Config{Workers: 2, QueueDepth: 16, CacheEntries: 16})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	req := ChaosRequest{Family: "dijkstra3", Procs: 5, Seed: 7, Episodes: 4, Steps: 4000}
	resp, body := postJSON(t, ts.URL+"/v1/chaos", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got ChaosResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Pass || got.Passed != 4 || got.Failed != 0 {
		t.Fatalf("campaign failed: %s", body)
	}
	if got.Transport != "chan" {
		t.Fatalf("transport %q, want chan", got.Transport)
	}
	if got.MTTR.N == 0 || len(got.Kinds) == 0 || got.Worst == nil {
		t.Fatalf("summary incomplete: %s", body)
	}
	if got.Cached {
		t.Fatal("first submission cannot be cached")
	}

	resp, body = postJSON(t, ts.URL+"/v1/chaos", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var again ChaosResponse
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatalf("identical campaign not served from cache: %s", body)
	}
	if again.MTTR != got.MTTR || again.Passed != got.Passed {
		t.Fatalf("cached report diverges: %+v vs %+v", again.MTTR, got.MTTR)
	}
}

// TestServiceChaosSLO: a budget below the measured worst case turns the
// verdict into a failing report — still a 200, the campaign ran; the
// verdict lives in the body.
func TestServiceChaosSLO(t *testing.T) {
	svc := New(Config{Workers: 2, QueueDepth: 16, CacheEntries: 16})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	req := ChaosRequest{Family: "dijkstra3", Procs: 5, Seed: 7, Episodes: 4, Steps: 4000}
	_, body := postJSON(t, ts.URL+"/v1/chaos", req)
	var probe ChaosResponse
	if err := json.Unmarshal(body, &probe); err != nil {
		t.Fatal(err)
	}
	if probe.MTTR.Max < 2 {
		t.Fatalf("campaign too tame: %+v", probe.MTTR)
	}

	req.RecoverySteps = probe.MTTR.Max - 1
	resp, body := postJSON(t, ts.URL+"/v1/chaos", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got ChaosResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Pass || got.Failed == 0 {
		t.Fatalf("budget below worst case but campaign passed: %s", body)
	}
}

// TestServiceChaosBadRequests: malformed campaigns are client errors,
// rejected before a worker is committed.
func TestServiceChaosBadRequests(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 4, CacheEntries: 4})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	cases := []struct {
		name string
		req  ChaosRequest
	}{
		{"unknown family", ChaosRequest{Family: "nope", Procs: 5}},
		{"too few procs", ChaosRequest{Family: "dijkstra3", Procs: 2}},
		{"too many episodes", ChaosRequest{Family: "dijkstra3", Procs: 5, Episodes: maxChaosEpisodes + 1}},
		{"too many steps", ChaosRequest{Family: "dijkstra3", Procs: 5, Steps: maxChaosSteps + 1}},
		{"campaign budget", ChaosRequest{Family: "dijkstra3", Procs: 5, Episodes: maxChaosEpisodes, Steps: maxChaosSteps}},
		{"too many faults", ChaosRequest{Family: "dijkstra3", Procs: 5, Faults: maxChaosFaults + 1}},
		{"unknown kind", ChaosRequest{Family: "dijkstra3", Procs: 5, Kinds: []string{"melt"}}},
		{"negative slo", ChaosRequest{Family: "dijkstra3", Procs: 5, RecoverySteps: -1}},
		{"cuts without duration", ChaosRequest{Family: "dijkstra3", Procs: 5,
			Kinds: []string{"partition"}, CutDuration: -1}},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/chaos", tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, resp.StatusCode, body)
		}
	}
}

// TestServiceChaosCrashPersist: a crash-inclusive campaign with
// persistence via the service reports crash-attributed recoveries and
// per-episode storage stats.
func TestServiceChaosCrashPersist(t *testing.T) {
	svc := New(Config{Workers: 2, QueueDepth: 16, CacheEntries: 16})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	req := ChaosRequest{Family: "dijkstra3", Procs: 5, Seed: 9, Episodes: 4, Steps: 5000,
		Kinds: []string{"crash", "corrupt"}, Faults: 3, Gap: 150, Start: 30,
		Persist: true, PersistEvery: 2, StorageFaultEvery: 5}
	resp, body := postJSON(t, ts.URL+"/v1/chaos", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got ChaosResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Pass {
		t.Fatalf("crash campaign failed: %s", body)
	}
	if _, ok := got.Kinds["crash"]; !ok {
		t.Fatalf("no crash-attributed recoveries: %s", body)
	}
	sawStorage := false
	for _, ep := range got.EpisodeResults {
		if ep.Storage != nil && ep.Storage.Saves > 0 {
			sawStorage = true
		}
	}
	if !sawStorage {
		t.Fatalf("no episode carries storage stats: %s", body)
	}

	bad := req
	bad.Persist = false
	resp, body = postJSON(t, ts.URL+"/v1/chaos", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("storage faults without persist: status %d, want 400: %s", resp.StatusCode, body)
	}
}
