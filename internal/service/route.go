package service

import (
	"bytes"
	"encoding/json"
	"net/http"

	"repro/internal/gcl"
	"repro/internal/gcl/analysis"
	"repro/internal/service/cache"
)

// Fleet routing support: a replica fleet fronts several Servers and
// routes each fingerprint-addressed request to its owner replica. The
// fleet layer lives in internal/fleet; this file exports exactly what
// it needs from the service — which requests are routable, the ring
// and cache keys of a request body, and a cache-only fast path — so
// the routing layer never reimplements key construction and can never
// drift from what the handlers actually cache under.

// Exported names of the fingerprint-routable check kinds. They match
// the /metrics request counters and the persisted cache entry tags.
const (
	KindSelfStab = kindSelfStab
	KindRefine   = kindRefine
	KindLint     = kindLint
)

// RouteKind maps an HTTP method+path to a routable check kind. Only
// the program-addressed endpoints route — everything else (ringsim,
// cluster, chaos, operational endpoints) is served wherever it lands.
func RouteKind(method, path string) (string, bool) {
	if method != http.MethodPost {
		return "", false
	}
	switch path {
	case "/v1/selfstab":
		return kindSelfStab, true
	case "/v1/refine":
		return kindRefine, true
	case "/v1/lint", "/lint":
		return kindLint, true
	}
	return "", false
}

// RouteInfo extracts the routing identity of a request body: RingKey is
// the canonical program fingerprint (both fingerprints for refine) that
// the consistent-hash ring routes on, and CacheKey is the exact verdict
// cache key the handler for kind would use. TimeoutMS is the request's
// declared deadline (0 = none) so the routing layer can budget a
// forward hop without re-decoding the body. An error means the body is
// not routable (bad JSON, unparsable program); the caller should hand
// the request to a local Server for the canonical 400.
type RouteInfo struct {
	RingKey   string
	CacheKey  string
	TimeoutMS int64
}

// routeDecode mirrors decodeJSON's strictness on raw bytes so routing
// and handling agree on what a malformed body is.
func routeDecode(body []byte, into any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return badRequest("invalid request body: %v", err)
	}
	return nil
}

// routeFingerprint parses one GCL source just far enough to fingerprint
// it. Semantic checks and the state-space bound are the owning
// handler's job; routing only needs the canonical identity.
func routeFingerprint(field, src string) (string, error) {
	if src == "" {
		return "", badRequest("missing %q: expected GCL program text", field)
	}
	prog, err := gcl.Parse(src)
	if err != nil {
		return "", badRequest("%s: %v", field, err)
	}
	return gcl.Fingerprint(prog), nil
}

// Route computes the RouteInfo of one routable request body.
func Route(kind string, body []byte) (RouteInfo, error) {
	switch kind {
	case kindSelfStab:
		var req SelfStabRequest
		if err := routeDecode(body, &req); err != nil {
			return RouteInfo{}, err
		}
		fp, err := routeFingerprint("source", req.Source)
		if err != nil {
			return RouteInfo{}, err
		}
		return RouteInfo{RingKey: fp, CacheKey: cache.Key(kindSelfStab, fp), TimeoutMS: req.TimeoutMS}, nil
	case kindRefine:
		var req RefineRequest
		if err := routeDecode(body, &req); err != nil {
			return RouteInfo{}, err
		}
		fpC, err := routeFingerprint("concrete", req.Concrete)
		if err != nil {
			return RouteInfo{}, err
		}
		fpA, err := routeFingerprint("abstract", req.Abstract)
		if err != nil {
			return RouteInfo{}, err
		}
		return RouteInfo{RingKey: fpC + fpA, CacheKey: cache.Key(kindRefine, fpC, fpA), TimeoutMS: req.TimeoutMS}, nil
	case kindLint:
		var req LintRequest
		if err := routeDecode(body, &req); err != nil {
			return RouteInfo{}, err
		}
		fp, err := routeFingerprint("source", req.Source)
		if err != nil {
			return RouteInfo{}, err
		}
		return RouteInfo{RingKey: fp, CacheKey: cache.Key(kindLint, fp, analysis.Version()), TimeoutMS: req.TimeoutMS}, nil
	}
	return RouteInfo{}, badRequest("kind %q is not routable", kind)
}

// TryServeCached answers from the local verdict cache if cacheKey is
// present, stamping requestID on the response exactly as ServeHTTP
// would. It is the fleet's fast path: a non-owner replica that holds a
// synced copy of the verdict serves it without a forward hop.
func (s *Server) TryServeCached(w http.ResponseWriter, cacheKey, requestID string) bool {
	v, ok := s.cache.Get(cacheKey)
	if !ok {
		return false
	}
	if requestID != "" {
		w.Header().Set("X-Request-Id", requestID)
	}
	s.recordOutcome(statusOK, "", 0, false)
	writeJSON(w, http.StatusOK, v.(cachedResponse).asCached(0))
	return true
}
