package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestServiceRequestID: every response carries an X-Request-Id header,
// and ids differ between requests.
func TestServiceRequestID(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 4, CacheEntries: 4})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	ids := map[string]bool{}
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get("X-Request-Id")
		if id == "" {
			t.Fatal("response without X-Request-Id")
		}
		if ids[id] {
			t.Fatalf("request id %q repeated", id)
		}
		ids[id] = true
	}
}

// TestServicePanickingHandler: a handler that panics produces a 500
// JSON error naming the request id — not a severed connection — and the
// server keeps serving afterwards.
func TestServicePanickingHandler(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 4, CacheEntries: 4})
	defer svc.Close()
	svc.mux.HandleFunc("POST /v1/boom", func(w http.ResponseWriter, r *http.Request) {
		panic("handler exploded")
	})
	ts := httptest.NewServer(svc)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/boom", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	var e errorBody
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("500 body is not JSON: %v", err)
	}
	id := resp.Header.Get("X-Request-Id")
	if id == "" || !strings.Contains(e.Error, id) {
		t.Fatalf("error %q does not carry the request id %q", e.Error, id)
	}
	if !strings.Contains(e.Error, "handler exploded") {
		t.Fatalf("error %q does not name the panic", e.Error)
	}

	// The server survived.
	ok, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	ok.Body.Close()
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic: %d", ok.StatusCode)
	}
	snap := fetchMetrics(t, ts.URL)
	if snap.Responses.Internal == 0 {
		t.Fatal("internal counter did not increment")
	}
}

// TestServicePanickingCheck: a panic inside a worker-pool job surfaces
// as a 500 JSON error with the request id, and the worker survives to
// run the next job.
func TestServicePanickingCheck(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 4, CacheEntries: 4})
	defer svc.Close()

	w := httptest.NewRecorder()
	r := httptest.NewRequest("POST", "/v1/test", nil)
	r = r.WithContext(context.WithValue(r.Context(), ctxKeyRequestID, "req-test-1"))
	svc.execute(w, r, kindSelfStab, "", 0, func(ctx context.Context) (any, error) {
		panic("check exploded")
	})
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", w.Code, w.Body.String())
	}
	var e errorBody
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "check exploded") || !strings.Contains(e.Error, "req-test-1") {
		t.Fatalf("error %q lacks the panic or the request id", e.Error)
	}

	// The single worker is still alive: a well-behaved job completes.
	w2 := httptest.NewRecorder()
	svc.execute(w2, httptest.NewRequest("POST", "/v1/test", nil), kindSelfStab, "", 0,
		func(ctx context.Context) (any, error) { return map[string]bool{"ok": true}, nil })
	if w2.Code != http.StatusOK {
		t.Fatalf("worker did not survive the panic: %d %s", w2.Code, w2.Body.String())
	}
}

// TestPoolPanicBackstop: a panic escaping a job's own recovery is
// contained by the worker and counted, and the worker keeps draining
// the queue.
func TestPoolPanicBackstop(t *testing.T) {
	p := newPool(1, 4)
	defer p.close()

	if !p.submit(&job{ctx: context.Background(), run: func(context.Context) { panic("raw job panic") }}) {
		t.Fatal("submit failed")
	}
	done := make(chan struct{})
	if !p.submit(&job{ctx: context.Background(), run: func(context.Context) { close(done) }}) {
		t.Fatal("submit failed")
	}
	<-done
	if p.panics.Load() != 1 {
		t.Fatalf("panic counter = %d, want 1", p.panics.Load())
	}
}
