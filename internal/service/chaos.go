package service

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/chaos"
	"repro/internal/service/cache"
	"repro/internal/sim"
)

const kindChaos = "chaos"

// chaos admission bounds. A campaign multiplies the cluster cost by its
// episode count, so both axes and their product are capped.
const (
	maxChaosEpisodes   = 256
	maxChaosSteps      = 100_000
	maxChaosTotalSteps = 5_000_000
	maxChaosFaults     = 64
)

// ChaosRequest is the body of POST /v1/chaos: one chaos campaign over
// the deterministic in-proc transport, mirroring `ringsim chaos`. The
// service runs stepped campaigns only — they are pure functions of the
// request, so the verdict cache applies; free-running TCP campaigns
// belong to the CLI.
type ChaosRequest struct {
	Family string `json:"family"`      // dijkstra3 | dijkstra4 | kstate | newthree
	Procs  int    `json:"procs"`       // number of processes (≥ 3)
	K      int    `json:"k,omitempty"` // kstate only; default procs
	Seed   int64  `json:"seed,omitempty"`
	// Episodes is the number of episodes (default 10).
	Episodes int `json:"episodes,omitempty"`
	// Steps is the per-episode step budget (default 5000); an episode
	// that has not re-stabilized by then violates the SLO.
	Steps int `json:"steps,omitempty"`
	// Kinds is the fault-kind mix (default corrupt, restart, partition).
	Kinds []string `json:"kinds,omitempty"`
	// Faults is the number of faults per episode (default 4).
	Faults int `json:"faults,omitempty"`
	// Gap is the number of steps between consecutive faults (default 50).
	Gap int `json:"gap,omitempty"`
	// Start is the step of the first fault (default 30).
	Start int `json:"start,omitempty"`
	// CutDuration is how long partitions/isolations last (default 40).
	CutDuration int `json:"cut_duration,omitempty"`
	// RecoverySteps and MaxTokens are the SLO (0 = unbounded/unchecked).
	RecoverySteps int `json:"recovery_steps,omitempty"`
	MaxTokens     int `json:"max_tokens,omitempty"`
	// RefreshEvery triggers a periodic anti-entropy round (0 = only on
	// partition heals).
	RefreshEvery int `json:"refresh_every,omitempty"`
	// Persist gives each episode a fresh in-memory snapshot store (never
	// the server's disk), so crash faults recover from persisted state.
	Persist bool `json:"persist,omitempty"`
	// PersistEvery is the snapshot interval in steps (≤ 0 = every step).
	PersistEvery int `json:"persist_every,omitempty"`
	// StorageFaultEvery faults every Nth snapshot write (0 = none;
	// requires persist); StorageFaultKinds is the mix, default all four.
	StorageFaultEvery int      `json:"storage_fault_every,omitempty"`
	StorageFaultKinds []string `json:"storage_fault_kinds,omitempty"`
	TimeoutMS         int64    `json:"timeout_ms,omitempty"`
}

// ChaosResponse is the campaign report plus the cache envelope.
type ChaosResponse struct {
	chaos.Report
	Cached    bool  `json:"cached"`
	ElapsedUS int64 `json:"elapsed_us"`
}

func (r ChaosResponse) asCached(elapsed time.Duration) any {
	r.Cached = true
	r.ElapsedUS = elapsed.Microseconds()
	return r
}

func (s *Server) handleChaos(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	s.recordRequest(kindChaos)
	var req ChaosRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeComputeError(w, err)
		return
	}
	if req.Episodes == 0 {
		req.Episodes = 10
	}
	if req.Steps == 0 {
		req.Steps = 5000
	}
	if len(req.Kinds) == 0 {
		req.Kinds = []string{"corrupt", "restart", "partition"}
	}
	if req.Faults == 0 {
		req.Faults = 4
	}
	if req.Gap == 0 {
		req.Gap = 50
	}
	if req.Start == 0 {
		req.Start = 30
	}
	if req.CutDuration == 0 {
		req.CutDuration = 40
	}
	if req.Procs < 3 || req.Procs > maxClusterProcs {
		s.writeComputeError(w, badRequest("procs must be in [3, %d], got %d", maxClusterProcs, req.Procs))
		return
	}
	if req.K == 0 {
		req.K = req.Procs
	}
	if req.K < 1 {
		s.writeComputeError(w, badRequest("k must be ≥ 1, got %d", req.K))
		return
	}
	if req.Episodes < 1 || req.Episodes > maxChaosEpisodes {
		s.writeComputeError(w, badRequest("episodes must be in [1, %d], got %d", maxChaosEpisodes, req.Episodes))
		return
	}
	if req.Steps < 1 || req.Steps > maxChaosSteps {
		s.writeComputeError(w, badRequest("steps must be in [1, %d], got %d", maxChaosSteps, req.Steps))
		return
	}
	if total := req.Episodes * req.Steps; total > maxChaosTotalSteps {
		s.writeComputeError(w, badRequest("episodes*steps = %d exceeds the campaign budget of %d",
			total, maxChaosTotalSteps))
		return
	}
	if req.Faults < 1 || req.Faults > maxChaosFaults {
		s.writeComputeError(w, badRequest("faults must be in [1, %d], got %d", maxChaosFaults, req.Faults))
		return
	}
	if req.RecoverySteps < 0 || req.MaxTokens < 0 || req.RefreshEvery < 0 {
		s.writeComputeError(w, badRequest("recovery_steps, max_tokens, and refresh_every must be ≥ 0"))
		return
	}
	if req.PersistEvery < 0 || req.StorageFaultEvery < 0 {
		s.writeComputeError(w, badRequest("persist_every and storage_fault_every must be ≥ 0"))
		return
	}
	if req.StorageFaultEvery > 0 && !req.Persist {
		s.writeComputeError(w, badRequest("storage_fault_every needs persist"))
		return
	}
	storageKinds, err := parseStorageFaultKinds(req.StorageFaultKinds)
	if err != nil {
		s.writeComputeError(w, badRequest("storage_fault_kinds: %v", err))
		return
	}

	var proto sim.Protocol
	switch req.Family {
	case "dijkstra3":
		proto = sim.NewDijkstra3(req.Procs)
	case "dijkstra4":
		proto = sim.NewDijkstra4(req.Procs)
	case "kstate":
		proto = sim.NewKState(req.Procs, req.K)
	case "newthree":
		proto = sim.NewNewThree(req.Procs)
	default:
		s.writeComputeError(w, badRequest("unknown family %q (want dijkstra3 | dijkstra4 | kstate | newthree)", req.Family))
		return
	}
	kinds := make([]cluster.FaultKind, len(req.Kinds))
	for i, k := range req.Kinds {
		kinds[i] = cluster.FaultKind(k)
	}
	opts := chaos.Options{
		Proto:    proto,
		Seed:     req.Seed,
		Episodes: req.Episodes,
		MaxSteps: req.Steps,
		Template: chaos.Template{
			Kinds:       kinds,
			Faults:      req.Faults,
			Gap:         req.Gap,
			Start:       req.Start,
			CutDuration: req.CutDuration,
		},
		SLO:          chaos.SLO{RecoverySteps: req.RecoverySteps, MaxTokens: req.MaxTokens},
		RefreshEvery: req.RefreshEvery,
		Persist:      req.Persist,
		PersistEvery: req.PersistEvery,
	}
	if req.StorageFaultEvery > 0 {
		opts.StorageFaultEvery = req.StorageFaultEvery
		opts.StorageFaultKinds = storageKinds
	}
	if err := opts.Template.Validate(proto); err != nil {
		s.writeComputeError(w, badRequest("template: %v", err))
		return
	}

	// A stepped campaign is a pure function of its parameters, so the
	// verdict cache applies; the template's canonical rendering keys the
	// schedule axes.
	key := cache.Key(kindChaos, req.Family,
		fmt.Sprint(req.Procs), fmt.Sprint(req.K), fmt.Sprint(req.Seed),
		fmt.Sprint(req.Episodes), fmt.Sprint(req.Steps),
		opts.Template.String(),
		fmt.Sprint(req.RecoverySteps), fmt.Sprint(req.MaxTokens), fmt.Sprint(req.RefreshEvery),
		fmt.Sprint(req.Persist), fmt.Sprint(req.PersistEvery),
		fmt.Sprint(req.StorageFaultEvery), fmt.Sprint(storageKinds))
	if s.serveFromCache(w, key, started) {
		return
	}
	s.execute(w, r, kindChaos, key, req.TimeoutMS, func(ctx context.Context) (any, error) {
		rep, err := chaos.Run(ctx, opts)
		if err != nil {
			return nil, err
		}
		// The campaign ran to completion: journal its summary (the
		// campaign projection aggregates it) even if the response
		// itself misses its deadline.
		s.recordCampaign(rep)
		return ChaosResponse{
			Report:    *rep,
			ElapsedUS: time.Since(started).Microseconds(),
		}, nil
	})
}
