package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gcl"
	"repro/internal/gcl/analysis"
)

// exampleSources loads the checked-in GCL example programs that
// compile cleanly (lint-demo.gcl is deliberately defective — it only
// exists to exercise the static analyzer and is covered by the lint
// tests instead).
func exampleSources(t *testing.T) map[string]string {
	t.Helper()
	out := make(map[string]string)
	dir := filepath.Join("..", "..", "examples", "gcl")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".gcl" || e.Name() == "lint-demo.gcl" {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = string(src)
	}
	if len(out) != 4 {
		t.Fatalf("expected the 4 example programs, found %d", len(out))
	}
	return out
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func fetchMetrics(t *testing.T, baseURL string) MetricsSnapshot {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestServiceEndToEnd is the acceptance scenario: the four example
// programs submitted concurrently from 8 goroutines, verdicts matching
// what gclc computes (core.SelfStabilizing on the same compiled
// programs), and identical re-submissions answered from the cache.
func TestServiceEndToEnd(t *testing.T) {
	sources := exampleSources(t)
	svc := New(Config{Workers: 4, QueueDepth: 64, CacheEntries: 128})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	// Ground truth, computed the way gclc selfstab does.
	type expected struct {
		holds      bool
		reason     string
		hasWitness bool
	}
	want := make(map[string]expected)
	for name, src := range sources {
		// The service compiles every submission under the name "program";
		// match it so the verdict reason strings compare equal.
		c, err := gcl.Compile("program", src)
		if err != nil {
			t.Fatal(err)
		}
		rep := core.SelfStabilizing(c.System)
		want[name] = expected{holds: rep.Holds, reason: rep.Reason, hasWitness: len(rep.Witness) > 0}
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*len(sources))
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for name, src := range sources {
				raw, err := json.Marshal(SelfStabRequest{Source: src})
				if err != nil {
					errs <- err
					return
				}
				resp, err := http.Post(ts.URL+"/v1/selfstab", "application/json", bytes.NewReader(raw))
				if err != nil {
					errs <- err
					return
				}
				var got SelfStabResponse
				err = json.NewDecoder(resp.Body).Decode(&got)
				resp.Body.Close()
				if err != nil {
					errs <- fmt.Errorf("%s: %v", name, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d", name, resp.StatusCode)
					return
				}
				exp := want[name]
				if got.Verdict.Holds != exp.holds || got.Verdict.Reason != exp.reason {
					errs <- fmt.Errorf("%s: verdict diverged from gclc: got (%v, %q), want (%v, %q)",
						name, got.Verdict.Holds, got.Verdict.Reason, exp.holds, exp.reason)
					return
				}
				if (len(got.Verdict.Witness) > 0) != exp.hasWitness {
					errs <- fmt.Errorf("%s: witness presence diverged", name)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Identical re-submission: a cache hit, not a re-enumeration.
	before := fetchMetrics(t, ts.URL)
	resp, body := postJSON(t, ts.URL+"/v1/selfstab", SelfStabRequest{Source: sources["dijkstra3-n2.gcl"]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-submission status %d: %s", resp.StatusCode, body)
	}
	var cachedResp SelfStabResponse
	if err := json.Unmarshal(body, &cachedResp); err != nil {
		t.Fatal(err)
	}
	if !cachedResp.Cached {
		t.Fatalf("re-submission not served from cache: %s", body)
	}
	after := fetchMetrics(t, ts.URL)
	if after.Cache.Hits <= before.Cache.Hits {
		t.Fatalf("cache hit counter did not increment: %d → %d", before.Cache.Hits, after.Cache.Hits)
	}
	// Reformatting the program (comments, whitespace) still hits: the key
	// is the canonical form, not the raw text.
	resp, body = postJSON(t, ts.URL+"/v1/selfstab",
		SelfStabRequest{Source: "// reformatted\n" + sources["counter.gcl"]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reformatted status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &cachedResp); err != nil {
		t.Fatal(err)
	}
	if !cachedResp.Cached {
		t.Fatalf("canonicalization missed the cache: %s", body)
	}

	if after.Requests[kindSelfStab] < goroutines*4 {
		t.Fatalf("request counter undercounts: %d", after.Requests[kindSelfStab])
	}
}

// TestServiceRefineBattery checks /v1/refine against the gclc refine
// battery, including a failing verdict with a witness.
func TestServiceRefineBattery(t *testing.T) {
	sources := exampleSources(t)
	svc := New(Config{Workers: 2, QueueDepth: 16, CacheEntries: 16})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	// A program refines itself, but broken-reset is not stabilizing to
	// itself — that verdict must fail and carry a concrete witness.
	broken := sources["broken-reset.gcl"]
	resp, body := postJSON(t, ts.URL+"/v1/refine", RefineRequest{Concrete: broken, Abstract: broken})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got RefineResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if !got.RefinementInit.Holds || !got.Everywhere.Holds || !got.Convergence.Holds {
		t.Fatalf("self-refinement should hold: %s", body)
	}
	if got.Stabilizing.Holds {
		t.Fatalf("broken-reset must not be self-stabilizing: %s", body)
	}
	if len(got.Stabilizing.Witness)+len(got.Stabilizing.WitnessLoop) == 0 {
		t.Fatalf("failing stabilization verdict lacks a witness: %s", body)
	}
	if got.Holds {
		t.Fatal("battery conjunction should be false")
	}

	// Mismatched state spaces are a client error.
	resp, body = postJSON(t, ts.URL+"/v1/refine",
		RefineRequest{Concrete: broken, Abstract: sources["counter.gcl"]})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched spaces: status %d: %s", resp.StatusCode, body)
	}
}

func TestServiceRingsim(t *testing.T) {
	svc := New(Config{Workers: 2, QueueDepth: 16, CacheEntries: 16})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	req := RingsimRequest{Family: "dijkstra3", Procs: 5, Runs: 5, Faults: 2, Steps: 50_000, Seed: 7}
	resp, body := postJSON(t, ts.URL+"/v1/ringsim", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got RingsimResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Converged != got.Runs || got.Runs != 5 {
		t.Fatalf("dijkstra3 should converge in every run: %s", body)
	}
	if got.Cached {
		t.Fatal("first submission cannot be cached")
	}

	resp, body = postJSON(t, ts.URL+"/v1/ringsim", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Cached {
		t.Fatalf("identical simulation not served from cache: %s", body)
	}

	// Unknown family and degenerate sizes are client errors.
	for _, bad := range []RingsimRequest{
		{Family: "nope", Procs: 5},
		{Family: "dijkstra3", Procs: 2},
		{Family: "dijkstra3", Procs: 5, Runs: -1},
	} {
		resp, body := postJSON(t, ts.URL+"/v1/ringsim", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%+v: status %d: %s", bad, resp.StatusCode, body)
		}
	}
}

// TestServiceTimeout holds the single worker busy so a request with a
// tiny deadline expires while queued: the client must get a prompt 504,
// not a hung connection.
func TestServiceTimeout(t *testing.T) {
	sources := exampleSources(t)
	svc := New(Config{Workers: 1, QueueDepth: 8, CacheEntries: 16})
	gate := make(chan struct{})
	svc.gate = gate
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	defer release() // release held jobs before teardown

	// Occupy the worker with a gated request on a long deadline.
	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		postJSON(t, ts.URL+"/v1/selfstab",
			SelfStabRequest{Source: sources["counter.gcl"], TimeoutMS: 30_000})
	}()
	waitFor(t, func() bool { return svc.pool.inFlight.Load() == 1 })

	started := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/selfstab",
		SelfStabRequest{Source: sources["dijkstra3-n2.gcl"], TimeoutMS: 50})
	elapsed := time.Since(started)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("504 without a usable Retry-After header: %q", ra)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("timeout was not prompt: %v", elapsed)
	}
	var e errorBody
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("timeout error body malformed: %s", body)
	}

	release()
	<-blockerDone

	snap := fetchMetrics(t, ts.URL)
	if snap.Responses.Timeout == 0 {
		t.Fatal("timeout counter did not increment")
	}
}

// TestServiceOverflow fills the single worker and the one queue slot,
// then asserts the next submission is rejected with 429 instead of
// queuing without bound.
func TestServiceOverflow(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 1, CacheEntries: 16})
	gate := make(chan struct{})
	svc.gate = gate
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	defer release()

	// Two distinct slow requests: one occupies the worker, one the queue.
	program := func(i int) string {
		return fmt.Sprintf("var x : 0..%d;\ninit x == 0;\naction tick: true -> x := (x + 1) %% %d;", i+2, i+3)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := postJSON(t, ts.URL+"/v1/selfstab",
				SelfStabRequest{Source: program(i), TimeoutMS: 30_000})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("held request %d finished with %d", i, resp.StatusCode)
			}
		}(i)
		if i == 0 {
			waitFor(t, func() bool { return svc.pool.inFlight.Load() == 1 })
		} else {
			waitFor(t, func() bool { return svc.pool.depth.Load() == 1 })
		}
	}

	resp, body := postJSON(t, ts.URL+"/v1/selfstab",
		SelfStabRequest{Source: program(2), TimeoutMS: 30_000})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("429 without a usable Retry-After header: %q", ra)
	}

	release()
	wg.Wait()

	snap := fetchMetrics(t, ts.URL)
	if snap.Responses.Overload == 0 {
		t.Fatal("overload counter did not increment")
	}
	if snap.Queue.Capacity != 1 || snap.Queue.Workers != 1 {
		t.Fatalf("queue gauges wrong: %+v", snap.Queue)
	}
}

func TestServiceBadRequests(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 4, CacheEntries: 4, MaxStates: 100})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	cases := []struct {
		name string
		body string
	}{
		{"syntax error", `{"source": "var x = ;;;"}`},
		{"empty source", `{"source": ""}`},
		{"unknown field", `{"sauce": "var x : 0..1;"}`},
		{"not json", `]]]`},
		{"state space too big", `{"source": "var a : 0..9;\nvar b : 0..9;\nvar c : 0..9;\naction t: true -> a := a;"}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/selfstab", "application/json",
			bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
	snap := fetchMetrics(t, ts.URL)
	if snap.Responses.BadRequest != int64(len(cases)) {
		t.Fatalf("bad-request counter = %d, want %d", snap.Responses.BadRequest, len(cases))
	}
}

func TestServiceHealthz(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 4, CacheEntries: 4})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" {
		t.Fatalf("healthz: %v", health)
	}
}

// TestServiceLatencyHistogram checks that successful checks land in the
// per-kind latency histogram.
func TestServiceLatencyHistogram(t *testing.T) {
	sources := exampleSources(t)
	svc := New(Config{Workers: 2, QueueDepth: 8, CacheEntries: 8})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	postJSON(t, ts.URL+"/v1/selfstab", SelfStabRequest{Source: sources["counter.gcl"]})
	snap := fetchMetrics(t, ts.URL)
	hist := snap.Latency[kindSelfStab]
	if hist.Count != 1 {
		t.Fatalf("selfstab latency count = %d, want 1", hist.Count)
	}
	total := int64(0)
	for _, n := range hist.Buckets {
		total += n
	}
	if total != 1 {
		t.Fatalf("histogram buckets sum to %d, want 1", total)
	}
}

// TestServiceLint submits the deliberately defective lint-demo example
// and checks the endpoint agrees with the analysis package (and hence
// with `gclc lint -json`, which calls the same engine), then that an
// identical re-submission is a verdict-cache hit.
func TestServiceLint(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "examples", "gcl", "lint-demo.gcl"))
	if err != nil {
		t.Fatal(err)
	}
	source := string(raw)
	svc := New(Config{Workers: 2, QueueDepth: 16, CacheEntries: 16})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	// Ground truth, computed the way runLint does.
	prog, err := gcl.Parse(source)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := analysis.Analyze(prog, analysis.Options{Exact: true})
	if err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, ts.URL+"/v1/lint", LintRequest{Source: source})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got LintResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Cached {
		t.Fatal("first submission cannot be cached")
	}
	if got.Program != gcl.Fingerprint(prog) || got.States != 512 || !got.Exact {
		t.Fatalf("report header: %+v", got)
	}
	if got.AnalyzerVersion != analysis.Version() {
		t.Fatalf("analyzer version: %q", got.AnalyzerVersion)
	}
	if got.Errors != 1 {
		t.Fatalf("errors = %d: %s", got.Errors, body)
	}
	if len(got.Diags) != len(truth.Diags) {
		t.Fatalf("diag count diverged from the engine: %d vs %d", len(got.Diags), len(truth.Diags))
	}
	for i := range got.Diags {
		g, w := got.Diags[i], truth.Diags[i]
		if g.Pos != w.Pos || g.Code != w.Code || g.Severity != w.Severity ||
			g.Confidence != w.Confidence || g.Msg != w.Msg {
			t.Fatalf("diag %d diverged:\n service: %+v\n engine:  %+v", i, g, w)
		}
	}

	// Identical re-submission: served from the verdict cache.
	before := fetchMetrics(t, ts.URL)
	resp, body = postJSON(t, ts.URL+"/v1/lint", LintRequest{Source: source})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-submission status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Cached {
		t.Fatalf("re-submission not served from cache: %s", body)
	}
	after := fetchMetrics(t, ts.URL)
	if after.Cache.Hits <= before.Cache.Hits {
		t.Fatalf("cache hit counter did not increment: %d → %d", before.Cache.Hits, after.Cache.Hits)
	}

	// The unversioned /lint alias answers identically (same cache key).
	resp, body = postJSON(t, ts.URL+"/lint", LintRequest{Source: source})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alias status %d: %s", resp.StatusCode, body)
	}
	var alias LintResponse
	if err := json.Unmarshal(body, &alias); err != nil {
		t.Fatal(err)
	}
	if !alias.Cached || alias.Errors != got.Errors || len(alias.Diags) != len(got.Diags) {
		t.Fatalf("alias diverged: %s", body)
	}

	if after.Requests[kindLint] < 2 {
		t.Fatalf("lint request counter undercounts: %d", after.Requests[kindLint])
	}
}

// TestServiceLintClean: a well-formed program lints to an empty (not
// null) diagnostics array with zero errors.
func TestServiceLintClean(t *testing.T) {
	sources := exampleSources(t)
	svc := New(Config{Workers: 1, QueueDepth: 4, CacheEntries: 4})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/lint", LintRequest{Source: sources["counter.gcl"]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte(`"diags":[]`)) {
		t.Fatalf("clean lint must serialize diags as [], not null: %s", body)
	}
	var got LintResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Errors != 0 || len(got.Diags) != 0 {
		t.Fatalf("counter.gcl should lint clean: %s", body)
	}

	// A syntactically broken program is a 400, same as the other kinds.
	resp, _ = postJSON(t, ts.URL+"/v1/lint", LintRequest{Source: "var x = ;;;"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("syntax error: status %d, want 400", resp.StatusCode)
	}
}

// TestServiceLintBudget: a budget too small for the exact tier is not
// an error — the response reports exact=false with approx verdicts.
func TestServiceLintBudget(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 4, CacheEntries: -1})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/lint", LintRequest{
		Source: "var x : 0..3;\naction dead: x > 9 -> x := 0;\naction live: x < 3 -> x := x + 1;",
		Budget: 2,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got LintResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Exact {
		t.Fatalf("2 gas cannot finish a 4-state sweep: %s", body)
	}
	found := false
	for _, d := range got.Diags {
		if d.Code == analysis.CodeDeadGuard {
			found = true
			if d.Confidence != analysis.ConfApprox {
				t.Fatalf("budget-starved lint must report approx confidence: %s", body)
			}
		}
	}
	if !found {
		t.Fatalf("interval-tier dead guard missing: %s", body)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}
