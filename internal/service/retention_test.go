package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/journal"
)

// TestJournalRangeQueryEndpoint: GET /v1/journal serves the decoded
// event history with inclusive bounds, rejects malformed ranges with
// 400s naming the parameter, and 404s on a journal-less server.
func TestJournalRangeQueryEndpoint(t *testing.T) {
	svc := New(Config{Workers: 2, QueueDepth: 16,
		JournalBackend: journal.NewMemBackend(nil)})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	for seed := int64(0); seed < 2; seed++ {
		resp, body := postJSON(t, ts.URL+"/v1/ringsim", ringsimBody(seed))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: %d: %s", seed, resp.StatusCode, body)
		}
	}
	waitJournalIdle(t, svc)
	last := svc.JournalLastSeq()
	if last < 4 {
		t.Fatalf("expected at least 4 events (2 requests, 2 outcomes, 2 verdicts), got %d", last)
	}

	// Whole history with defaulted bounds.
	resp, body := getJSON(t, ts.URL+"/v1/journal")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/journal: %d: %s", resp.StatusCode, body)
	}
	var whole JournalRangeResponse
	mustUnmarshal(t, body, &whole)
	if whole.From != 1 || whole.To != last || whole.LastSeq != last {
		t.Fatalf("bounds from=%d to=%d last=%d, journal head %d", whole.From, whole.To, whole.LastSeq, last)
	}
	if uint64(len(whole.Events)) != last {
		t.Fatalf("whole history returned %d events, head is %d", len(whole.Events), last)
	}
	sawVerdict := false
	for i, ev := range whole.Events {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if ev.Kind == string(journal.KindVerdict) {
			var pe persistedEntry
			if err := json.Unmarshal(ev.Data, &pe); err != nil || pe.Key == "" {
				t.Fatalf("verdict event %d data did not decode: %s (%v)", ev.Seq, ev.Data, err)
			}
			sawVerdict = true
		}
	}
	if !sawVerdict {
		t.Fatal("no verdict event in the range response")
	}

	// An explicit inclusive sub-range.
	resp, body = getJSON(t, ts.URL+"/v1/journal?from=2&to=3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sub-range: %d: %s", resp.StatusCode, body)
	}
	var sub JournalRangeResponse
	mustUnmarshal(t, body, &sub)
	if len(sub.Events) != 2 || sub.Events[0].Seq != 2 || sub.Events[1].Seq != 3 {
		t.Fatalf("sub-range [2,3] returned %+v", sub.Events)
	}

	// Malformed ranges are 400s that name what was wrong.
	for _, tc := range []struct{ query, wantSub string }{
		{"?from=abc", "from"},
		{"?to=zzz", "to"},
		{"?from=5&to=3", "from=5 > to=3"},
		{"?from=0", "start at 1"},
	} {
		resp, body := getJSON(t, ts.URL+"/v1/journal"+tc.query)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d: %s", tc.query, resp.StatusCode, body)
		}
		if !containsStr(body, tc.wantSub) {
			t.Fatalf("%s: error %s does not name %q", tc.query, body, tc.wantSub)
		}
	}

	// The endpoint shares the request-id middleware like everything else.
	httpResp, err := http.Get(ts.URL + "/v1/journal")
	if err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	if httpResp.Header.Get("X-Request-Id") == "" {
		t.Fatal("no X-Request-Id on a journal range response")
	}

	// A journal-less server answers 404, not a panic or an empty page.
	plain := New(Config{Workers: 1, QueueDepth: 4})
	defer plain.Close()
	tsPlain := httptest.NewServer(plain)
	defer tsPlain.Close()
	resp, body = getJSON(t, tsPlain.URL+"/v1/journal")
	if resp.StatusCode != http.StatusNotFound || !containsStr(body, "without a journal") {
		t.Fatalf("journal-less: %d: %s", resp.StatusCode, body)
	}
}

// TestJournalRangeQueryPaging: a range wider than one page truncates at
// journalQueryMaxEvents and hands back a resume cursor that walks the
// rest.
func TestJournalRangeQueryPaging(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 4,
		JournalBackend: journal.NewMemBackend(nil)})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	total := journalQueryMaxEvents + 40
	for i := 0; i < total; i++ {
		if err := svc.journal.j.AppendAsync(journal.KindRequest,
			[]byte(fmt.Sprintf(`{"kind":"page-%d"}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	waitJournalIdle(t, svc)

	resp, body := getJSON(t, ts.URL+"/v1/journal")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("page 1: %d: %s", resp.StatusCode, body)
	}
	var page JournalRangeResponse
	mustUnmarshal(t, body, &page)
	if !page.Truncated || len(page.Events) != journalQueryMaxEvents {
		t.Fatalf("page 1: truncated=%v events=%d", page.Truncated, len(page.Events))
	}
	if page.NextFrom != journalQueryMaxEvents+1 {
		t.Fatalf("page 1 next_from = %d", page.NextFrom)
	}
	resp, body = getJSON(t, fmt.Sprintf("%s/v1/journal?from=%d", ts.URL, page.NextFrom))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("page 2: %d: %s", resp.StatusCode, body)
	}
	var rest JournalRangeResponse
	mustUnmarshal(t, body, &rest)
	if rest.Truncated || len(rest.Events) != total-journalQueryMaxEvents {
		t.Fatalf("page 2: truncated=%v events=%d want %d",
			rest.Truncated, len(rest.Events), total-journalQueryMaxEvents)
	}
}

// TestVerdictTimeTravelMatchesReferenceReplay: "the verdict cache as of
// sequence N" computed by VerdictKeysAsOf equals the cache a fresh
// server reconstructs by replaying exactly the journal prefix up to N —
// the time-travel view is the reference replay, not an approximation.
func TestVerdictTimeTravelMatchesReferenceReplay(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 16,
		JournalBackend: journal.NewMemBackend(nil)})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	// Sequential requests with a barrier after each, so lastSeq[i] is a
	// cut that includes exactly the first i+1 verdicts.
	var cuts []uint64
	for seed := int64(0); seed < 3; seed++ {
		resp, body := postJSON(t, ts.URL+"/v1/ringsim", ringsimBody(seed))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: %d: %s", seed, resp.StatusCode, body)
		}
		waitJournalIdle(t, svc)
		cuts = append(cuts, svc.JournalLastSeq())
	}

	asOf := cuts[1]
	keys, err := svc.VerdictKeysAsOf(asOf)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool, len(keys))
	for _, k := range keys {
		got[k] = true
	}
	if !got[ringsimKey(0)] || !got[ringsimKey(1)] || got[ringsimKey(2)] {
		t.Fatalf("as-of %d keys %v: want seeds 0,1 and not 2", asOf, keys)
	}

	// Reference replay: a fresh server on exactly the prefix up to asOf.
	var prefix bytes.Buffer
	for _, ev := range svc.journal.j.Events(0) {
		if ev.Seq > asOf {
			break
		}
		prefix.Write(journal.EncodeEvent(ev))
	}
	ref := New(Config{Workers: 1, QueueDepth: 16,
		JournalBackend: journal.NewMemBackend(prefix.Bytes())})
	defer ref.Close()
	waitFor(t, func() bool { return ref.journal.ready.Load() })
	refKeys := ref.CacheKeys()
	if len(refKeys) != len(keys) {
		t.Fatalf("reference replay has %d verdicts, time travel %d", len(refKeys), len(keys))
	}
	for _, k := range refKeys {
		if !got[k] {
			t.Fatalf("reference replay key %s missing from the time-travel view", k)
		}
	}

	// Retention retires history: once the prefix is compacted away, the
	// same question answers ErrCompacted instead of a partial lie.
	svc.CoverJournalTo(svc.JournalLastSeq())
	if st := svc.CompactJournal(); st.HorizonSeq == 0 {
		t.Fatalf("compaction did not advance the horizon: %+v", st)
	}
	if _, err := svc.VerdictKeysAsOf(asOf); !errors.Is(err, journal.ErrCompacted) {
		t.Fatalf("time travel below the horizon: err = %v, want ErrCompacted", err)
	}
}

// TestCompactionPreservesServingStateAcrossRestart: snapshot-covered
// compaction drops journal events without losing serving state — a
// restart on the compacted journal plus the snapshot serves every prior
// verdict as a cache hit, and sequence numbering continues above the
// old head instead of resetting.
func TestCompactionPreservesServingStateAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	backend := journal.NewMemBackend(nil)
	mk := func() *Server {
		return New(Config{Workers: 2, QueueDepth: 16,
			CachePath: path, CacheSnapshotInterval: time.Hour,
			JournalBackend: backend})
	}
	svc := mk()
	ts := httptest.NewServer(svc)
	for seed := int64(0); seed < 3; seed++ {
		resp, body := postJSON(t, ts.URL+"/v1/ringsim", ringsimBody(seed))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: %d: %s", seed, resp.StatusCode, body)
		}
	}
	waitJournalIdle(t, svc)
	ckpt, ok := svc.persister.snapshot()
	if !ok || ckpt == 0 {
		t.Fatalf("snapshot: ckpt=%d ok=%v", ckpt, ok)
	}
	svc.CoverJournalTo(ckpt)
	st := svc.CompactJournal()
	if st.Compactions != 1 || st.DroppedEvents == 0 || st.HorizonSeq == 0 {
		t.Fatalf("compaction stats %+v", st)
	}
	lastSeq := svc.JournalLastSeq()
	horizon := svc.JournalHorizon()
	ts.Close()
	svc.Close()

	svc2 := mk()
	defer svc2.Close()
	waitFor(t, func() bool { return svc2.journal.ready.Load() })
	if got := svc2.JournalHorizon(); got != horizon {
		t.Fatalf("restart horizon %d, want %d (inferred from the compacted prefix)", got, horizon)
	}
	if got := svc2.JournalLastSeq(); got != lastSeq {
		t.Fatalf("restart head %d, want %d — compaction must never reset sequence numbering", got, lastSeq)
	}
	ts2 := httptest.NewServer(svc2)
	defer ts2.Close()
	for seed := int64(0); seed < 3; seed++ {
		resp, body := postJSON(t, ts2.URL+"/v1/ringsim", ringsimBody(seed))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("restart seed %d: %d: %s", seed, resp.StatusCode, body)
		}
		var rr RingsimResponse
		mustUnmarshal(t, body, &rr)
		if !rr.Cached {
			t.Fatalf("seed %d recomputed after compacted restart: %s", seed, body)
		}
	}
	// New history lands above the old head.
	resp, body := postJSON(t, ts2.URL+"/v1/ringsim", ringsimBody(99))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("new verdict: %d: %s", resp.StatusCode, body)
	}
	waitJournalIdle(t, svc2)
	if got := svc2.JournalLastSeq(); got <= lastSeq {
		t.Fatalf("new events at seq %d, want > %d", got, lastSeq)
	}
}

// TestRetentionMetricsSurface: with a disk budget, /metrics carries the
// retention section (including journal_shed_total); without one the
// section is absent rather than a block of zeros.
func TestRetentionMetricsSurface(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	svc := New(Config{Workers: 1, QueueDepth: 4,
		CachePath: path, CacheSnapshotInterval: time.Hour,
		JournalBackend:  journal.NewMemBackend(nil),
		JournalMaxBytes: 1 << 20, JournalCheckpointInterval: time.Hour})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	resp, body := postJSON(t, ts.URL+"/v1/ringsim", ringsimBody(1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ringsim: %d: %s", resp.StatusCode, body)
	}
	waitJournalIdle(t, svc)
	resp, body = getJSON(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if !containsStr(body, `"journal_shed_total"`) {
		t.Fatalf("metrics body lacks journal_shed_total: %s", body)
	}
	var snap MetricsSnapshot
	mustUnmarshal(t, body, &snap)
	ret := snap.Journal.Retention
	if ret == nil || ret.MaxBytes != 1<<20 || ret.UsageBytes == 0 || ret.Level != "none" {
		t.Fatalf("retention section %+v", ret)
	}

	plain := New(Config{Workers: 1, QueueDepth: 4,
		JournalBackend: journal.NewMemBackend(nil)})
	defer plain.Close()
	tsPlain := httptest.NewServer(plain)
	defer tsPlain.Close()
	snapPlain := fetchMetrics(t, tsPlain.URL)
	if snapPlain.Journal == nil || snapPlain.Journal.Retention != nil {
		t.Fatalf("budget-less server grew a retention section: %+v", snapPlain.Journal)
	}
}
