package service

import (
	"sync/atomic"
	"time"
)

// latencyBucketsUS are the upper bounds (µs, inclusive) of the latency
// histogram buckets: 100µs, 1ms, 10ms, 100ms, 1s, 10s, plus an implicit
// overflow bucket. Verification latencies span five orders of magnitude
// between a 27-state toy and a budget-bounded sweep, so log-scale buckets
// are the only shape that stays informative.
var latencyBucketsUS = [6]int64{100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000}

// latencyBucketLabels mirror latencyBucketsUS for the JSON snapshot.
var latencyBucketLabels = [7]string{
	"le_100us", "le_1ms", "le_10ms", "le_100ms", "le_1s", "le_10s", "gt_10s",
}

// histogram is a fixed-bucket latency histogram on atomics.
type histogram struct {
	counts [7]atomic.Int64
	sumUS  atomic.Int64
	n      atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	us := d.Microseconds()
	i := 0
	for ; i < len(latencyBucketsUS); i++ {
		if us <= latencyBucketsUS[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.sumUS.Add(us)
	h.n.Add(1)
}

// HistogramSnapshot is the JSON form of one latency histogram.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	MeanUS  float64          `json:"mean_us"`
	Buckets map[string]int64 `json:"buckets"`
}

func (h *histogram) snapshot() HistogramSnapshot {
	out := HistogramSnapshot{Buckets: make(map[string]int64, len(latencyBucketLabels))}
	out.Count = h.n.Load()
	if out.Count > 0 {
		out.MeanUS = float64(h.sumUS.Load()) / float64(out.Count)
	}
	for i, label := range latencyBucketLabels {
		out.Buckets[label] = h.counts[i].Load()
	}
	return out
}

// metrics is checkd's expvar-style counter set. All fields are atomics;
// the /metrics handler serializes a consistent-enough point-in-time
// snapshot without stopping the world.
type metrics struct {
	requests map[string]*atomic.Int64 // per kind, fixed keys
	latency  map[string]*histogram    // per kind, successful checks only

	ok         atomic.Int64
	badRequest atomic.Int64
	timeout    atomic.Int64
	overload   atomic.Int64
	internal   atomic.Int64
}

// applyOutcome folds one outcome into the counters — the single
// mutation path shared by the live (journal-less) recorders and the
// metrics projection's replay, so both derivations agree by
// construction.
func (m *metrics) applyOutcome(oe outcomeEvent) {
	switch oe.Status {
	case statusOK:
		m.ok.Add(1)
	case statusBadRequest:
		m.badRequest.Add(1)
	case statusTimeout:
		m.timeout.Add(1)
	case statusOverload:
		m.overload.Add(1)
	case statusInternal:
		m.internal.Add(1)
	}
	if oe.Latency {
		if h, ok := m.latency[oe.Kind]; ok {
			h.observe(time.Duration(oe.ElapsedUS) * time.Microsecond)
		}
	}
}

func newMetrics(kinds ...string) *metrics {
	m := &metrics{
		requests: make(map[string]*atomic.Int64, len(kinds)),
		latency:  make(map[string]*histogram, len(kinds)),
	}
	for _, k := range kinds {
		m.requests[k] = &atomic.Int64{}
		m.latency[k] = &histogram{}
	}
	return m
}

// MetricsSnapshot is the JSON document served by GET /metrics.
type MetricsSnapshot struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Requests      map[string]int64 `json:"requests"`
	Responses     struct {
		OK         int64 `json:"ok"`
		BadRequest int64 `json:"bad_request"`
		Timeout    int64 `json:"timeout"`
		Overload   int64 `json:"overload"`
		Internal   int64 `json:"internal"`
	} `json:"responses"`
	Cache struct {
		Hits    uint64 `json:"hits"`
		Misses  uint64 `json:"misses"`
		Entries int    `json:"entries"`
		// Persist is present only when the server runs with a cache file.
		Persist *CachePersistSnapshot `json:"persist,omitempty"`
	} `json:"cache"`
	Queue struct {
		Depth    int64 `json:"depth"`
		Capacity int   `json:"capacity"`
		InFlight int64 `json:"in_flight"`
		Workers  int   `json:"workers"`
		Panics   int64 `json:"panics"`
	} `json:"queue"`
	Latency map[string]HistogramSnapshot `json:"latency_us"`
	// Journal is present only when the server is event-sourced.
	Journal *JournalMetricsSnapshot `json:"journal,omitempty"`
	// Fleet is present only when the server fronts a fleet replica
	// (Config.ResilienceMetrics installed).
	Fleet *FleetResilienceSnapshot `json:"fleet,omitempty"`
}

// FleetResilienceSnapshot is the fleet routing layer's failure-domain
// counters as surfaced through /metrics: per-peer breaker states,
// lifetime breaker transitions, hedged-forward races, and deadline-
// budget refusals. The fleet supplies it via Config.ResilienceMetrics;
// the service only serializes it.
type FleetResilienceSnapshot struct {
	// BreakerStates maps peer id → closed | open | half-open.
	BreakerStates map[string]string `json:"breaker_states"`
	// Breaker transition counters, summed across peers.
	BreakerOpens     int64 `json:"breaker_opens"`
	BreakerHalfOpens int64 `json:"breaker_half_opens"`
	BreakerCloses    int64 `json:"breaker_closes"`
	// BreakerSkips counts calls refused by an open breaker (each one a
	// dial-and-timeout the request did not pay).
	BreakerSkips int64 `json:"breaker_skips"`
	// Hedged forwards: races started, and who won them.
	HedgesFired      int64 `json:"hedges_fired"`
	HedgeLocalWins   int64 `json:"hedge_local_wins"`
	HedgeForwardWins int64 `json:"hedge_forward_wins"`
	// HedgeWinRatio is HedgeLocalWins / HedgesFired — the fraction of
	// fired hedges where racing local compute actually paid off.
	HedgeWinRatio float64 `json:"hedge_win_ratio"`
	// Deadline budgets: forwards a peer refused as budget-exhausted
	// (client view) and forwards this replica refused as owner.
	BudgetExhausted int64 `json:"budget_exhausted"`
	BudgetRefused   int64 `json:"budget_refused"`
	// Quarantine: peers currently held, and lifetime offenses.
	Quarantined []string `json:"quarantined,omitempty"`
	Quarantines int64    `json:"quarantines"`
}
