package service

import (
	"context"
	"sync"
	"sync/atomic"
)

// job is one unit of verification work. run receives the request's
// context (deadline + client disconnect) and must honor it — the checkers
// do, via mc.Gas.
type job struct {
	ctx context.Context
	run func(ctx context.Context)
}

// pool is a fixed set of worker goroutines draining a bounded queue.
// Backpressure is the queue bound: submit never blocks, and a full queue
// surfaces to the client as 429 rather than as unbounded memory growth.
// Jobs whose context died while queued are skipped, not run — an
// abandoned request costs a queue slot, never a worker.
type pool struct {
	queue    chan *job
	wg       sync.WaitGroup
	depth    atomic.Int64 // jobs queued, not yet picked up
	inFlight atomic.Int64 // jobs executing right now
	panics   atomic.Int64 // jobs that panicked past their own recovery
}

func newPool(workers, queueDepth int) *pool {
	p := &pool{queue: make(chan *job, queueDepth)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.wg.Done()
	for j := range p.queue {
		p.depth.Add(-1)
		if j.ctx.Err() != nil {
			continue
		}
		p.inFlight.Add(1)
		p.runOne(j)
		p.inFlight.Add(-1)
	}
}

// runOne is the worker's panic backstop. Jobs recover their own panics
// (safeCompute) and answer the waiting handler; anything that escapes
// past that — a bug in the job plumbing itself — is counted and
// contained here so one bad job cannot kill a pool worker for the rest
// of the process's life.
func (p *pool) runOne(j *job) {
	defer func() {
		if v := recover(); v != nil {
			p.panics.Add(1)
		}
	}()
	j.run(j.ctx)
}

// submit enqueues without blocking. false means the queue is full.
func (p *pool) submit(j *job) bool {
	p.depth.Add(1)
	select {
	case p.queue <- j:
		return true
	default:
		p.depth.Add(-1)
		return false
	}
}

// close drains the queue and stops the workers. Queued jobs still run
// (their contexts typically die first during shutdown).
func (p *pool) close() {
	close(p.queue)
	p.wg.Wait()
}
