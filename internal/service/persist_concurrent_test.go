package service

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/service/cache"
)

// Concurrent writers during snapshot intervals: 8 goroutines fill the
// cache while the persister snapshots every millisecond. Every file
// the persister publishes — including ones written mid-burst — must be
// a consistent prefix of the write stream: every record decodes (no
// torn entries), every key is one a writer actually wrote, and the
// final reload recovers the full set. Run under -race this also pins
// the snapshot path as data-race-free against cache writes.
func TestCachePersistConcurrentWriters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	cfg := Config{Workers: 2, QueueDepth: 16, CacheEntries: 4096,
		CachePath: path, CacheSnapshotInterval: time.Millisecond}
	svc := New(cfg)

	const writers = 8
	const perWriter = 150
	keyOf := func(w, i int) string {
		return cache.Key(kindSelfStab, fmt.Sprintf("sha256:%02d%04d", w, i))
	}
	valid := make(map[string]bool, writers*perWriter)
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			valid[keyOf(w, i)] = true
		}
	}

	var wg sync.WaitGroup
	stopProbe := make(chan struct{})
	probeErr := make(chan error, 1)
	// Probe goroutine: read published snapshots while writes are racing
	// the persister. Rename is atomic, so every read sees a complete
	// file; each must decode cleanly with only known keys.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopProbe:
				return
			default:
			}
			data, err := os.ReadFile(path)
			if err != nil {
				continue // not published yet
			}
			entries, _, skipped := decodeCacheEntries(data)
			if skipped != 0 {
				probeErr <- fmt.Errorf("published snapshot had %d undecodable records", skipped)
				return
			}
			for _, e := range entries {
				if !valid[e.Key] {
					probeErr <- fmt.Errorf("snapshot contains key %q nobody wrote", e.Key)
					return
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				svc.cache.Put(keyOf(w, i), SelfStabResponse{
					Program: fmt.Sprintf("sha256:%02d%04d", w, i),
					States:  i,
				})
			}
		}(w)
	}
	// Let writers and the probe overlap live snapshots, then stop.
	time.Sleep(30 * time.Millisecond)
	close(stopProbe)
	wg.Wait()
	select {
	case err := <-probeErr:
		t.Fatal(err)
	default:
	}
	svc.Close() // final snapshot holds everything

	svc2 := New(cfg)
	defer svc2.Close()
	keys := svc2.CacheKeys()
	if len(keys) != writers*perWriter {
		t.Fatalf("reload recovered %d entries, want %d", len(keys), writers*perWriter)
	}
	for _, k := range keys {
		if !valid[k] {
			t.Fatalf("reload produced unknown key %q", k)
		}
	}
	// The reloaded values must have survived the kind-tagged codec as
	// their concrete response type, not as raw JSON.
	if v, ok := svc2.cache.Get(keyOf(0, 0)); !ok {
		t.Fatal("reloaded cache misses a written key")
	} else if _, isResp := v.(SelfStabResponse); !isResp {
		t.Fatalf("reloaded value has type %T, want SelfStabResponse", v)
	}
}
