package service

// Anti-entropy support: fleet replicas periodically exchange verdict
// cache digests and pull entries they are missing, so a verdict
// computed once becomes warm everywhere. The wire payload is exactly
// the persistent cache's snapshot framing (store.EncodeRecord frames
// wrapping kind-tagged JSON), which buys the same guarantee the
// snapshot file has: a stale-schema or corrupt entry is skipped and
// counted, never loaded half-blank — anti-entropy can spread verdicts,
// not corruption.

// CacheKeys returns the keys currently in the verdict cache, least
// recently used first (the order Entries reports).
func (s *Server) CacheKeys() []string {
	entries := s.cache.Entries()
	keys := make([]string, len(entries))
	for i, e := range entries {
		keys[i] = e.Key
	}
	return keys
}

// EncodeCacheEntriesFor renders up to max of the named cache entries in
// snapshot framing (max ≤ 0 means all). Keys not present (evicted since
// the digest) are silently skipped — anti-entropy is best-effort.
func (s *Server) EncodeCacheEntriesFor(keys []string, max int) []byte {
	if len(keys) == 0 {
		return nil
	}
	want := make(map[string]bool, len(keys))
	for _, k := range keys {
		want[k] = true
	}
	all := s.cache.Entries()
	// Walk most recently used first so a capped pull ships the hottest
	// entries, not the coldest.
	picked := all[:0]
	for i := len(all) - 1; i >= 0; i-- {
		if want[all[i].Key] {
			picked = append(picked, all[i])
			if max > 0 && len(picked) >= max {
				break
			}
		}
	}
	// Anti-entropy streams carry no journal checkpoint: the receiver's
	// journal numbering is its own.
	return encodeCacheEntries(0, picked)
}

// LoadColdCacheEntries decodes a snapshot-framed entry stream and
// inserts every entry that survives the framing, JSON, and kind checks
// — and is not already present — at the cold end of the LRU. Cold
// insertion means synced verdicts fill idle cache capacity without ever
// evicting an entry this replica earned through its own traffic.
// Returns the number of entries loaded and the number skipped (corrupt,
// stale schema, already present, or cache full).
func (s *Server) LoadColdCacheEntries(b []byte) (loaded, skipped int64) {
	entries, _, skippedDecode := decodeCacheEntries(b)
	skipped = skippedDecode
	for _, e := range entries {
		if s.cache.PutCold(e.Key, e.Val) {
			loaded++
		} else {
			skipped++
		}
	}
	return loaded, skipped
}
