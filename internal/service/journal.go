package service

import (
	"bytes"
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster/chaos"
	"repro/internal/journal"
	"repro/internal/service/cache"
)

// Event sourcing: when Config.JournalPath or Config.JournalBackend is
// set, the journal becomes checkd's single durable source of truth.
// Handlers stop mutating the verdict cache and /metrics counters
// directly; instead every request arrival, outcome, computed verdict,
// and chaos campaign is appended as a typed event, and three
// projections — cache, metrics, campaigns — derive the serving state by
// replaying the event history. Startup becomes replay: open the
// journal, drive the projections to convergence, then report ready.
//
// The refinement invariant: each projection's Apply is idempotent per
// sequence number, so replaying any prefix (snapshot checkpoint + tail,
// or the whole journal) converges to the same observable state. A crash
// can lose at most the acknowledged-but-unflushed suffix of one group
// commit — and verdict events are appended durably *before* the HTTP
// response is written, so a verdict a client saw is a verdict replay
// reconstructs.
//
// Without a journal configured, the record* seam degrades to the direct
// counter/cache mutations checkd has always done; every journal append
// failure degrades the same way, so a full disk costs event history,
// never a request.

// Outcome statuses, mirroring the /metrics response counters.
const (
	statusOK         = "ok"
	statusBadRequest = "bad_request"
	statusTimeout    = "timeout"
	statusOverload   = "overload"
	statusInternal   = "internal"
)

// requestEvent is the payload of a journal.KindRequest event.
type requestEvent struct {
	Kind string `json:"kind"`
}

// outcomeEvent is the payload of a journal.KindOutcome event. Latency
// marks outcomes that feed the per-kind latency histogram (successful
// computed checks only, matching the live path).
type outcomeEvent struct {
	Status    string `json:"status"`
	Kind      string `json:"kind,omitempty"`
	ElapsedUS int64  `json:"elapsed_us,omitempty"`
	Latency   bool   `json:"latency,omitempty"`
}

// campaignEvent is the payload of a journal.KindCampaign event: the
// summary row of one completed chaos campaign.
type campaignEvent struct {
	Protocol string `json:"protocol"`
	Episodes int    `json:"episodes"`
	Passed   int    `json:"passed"`
	Failed   int    `json:"failed"`
}

// A verdict event's payload is a persistedEntry — the exact shape the
// cache snapshot file and anti-entropy sync already use, so the three
// durability paths share one codec and one strictness policy.

// serverJournal bundles the journal, its projection engine, and the
// projections deriving this server's state.
type serverJournal struct {
	j      *journal.Journal
	engine *journal.Engine
	file   *journal.FileBackend // non-nil when opened from JournalPath

	cacheProj   *cacheProjection
	metricsProj *metricsProjection
	campProj    *campaignProjection

	ready    atomic.Bool // projections converged on the replayed history
	stop     chan struct{}
	closeOne sync.Once
}

// journalReplayPoll is how often the readiness waiter re-checks
// convergence while replaying.
const journalReplayPoll = 2 * time.Second

// newServerJournal opens the journal and starts the projections. It
// never fails the server: an unopenable journal logs and returns nil,
// degrading to direct bookkeeping.
func newServerJournal(s *Server, cfg Config) *serverJournal {
	b := cfg.JournalBackend
	var file *journal.FileBackend
	if b == nil {
		f, err := journal.OpenFile(cfg.JournalPath)
		if err != nil {
			s.logf("journal: open %s: %v (running without a journal)", cfg.JournalPath, err)
			return nil
		}
		file, b = f, f
	}
	j, err := journal.Open(b, journal.Options{MaxBatch: cfg.JournalMaxBatch})
	if err != nil {
		s.logf("journal: %v (running without a journal)", err)
		if file != nil {
			file.Close()
		}
		return nil
	}
	sj := &serverJournal{j: j, file: file, stop: make(chan struct{})}
	sj.engine = journal.NewEngine(j, cfg.JournalMaxLag)

	// The cache projection resumes from the snapshot file's checkpoint:
	// the persister already materialized the cache up to that sequence
	// number, so replay covers only the tail. Metrics and campaigns are
	// memory-only and always replay the full history — with a journal,
	// /metrics counters are journal-lifetime, not process-lifetime.
	sj.cacheProj = &cacheProjection{c: s.cache}
	if s.persister != nil {
		sj.cacheProj.seq.Store(s.persister.loadedCheckpoint.Load())
		s.persister.setJournalSeq(sj.cacheProj.Seq)
	}
	sj.metricsProj = &metricsProjection{m: s.metrics}
	sj.campProj = &campaignProjection{}
	sj.engine.Register(sj.cacheProj)
	sj.engine.Register(sj.metricsProj)
	sj.engine.Register(sj.campProj)

	if st := j.ReplayStats(); st.Events > 0 || st.Corrupt > 0 {
		s.logf("journal: replayed %d events (corrupt %d, stale %d, resyncs %d) from %d bytes",
			st.Events, st.Corrupt, st.Stale, st.Resyncs, st.Bytes)
	}
	go func() {
		for !sj.engine.WaitCaughtUp(journalReplayPoll) {
			select {
			case <-sj.stop:
				return
			default:
			}
		}
		sj.ready.Store(true)
	}()
	return sj
}

// close drains the projections, then the journal, then the file.
// Engine first: its final catch-up needs the journal still readable.
func (sj *serverJournal) close() {
	sj.closeOne.Do(func() {
		close(sj.stop)
		sj.engine.Close()
		sj.j.Close()
		if sj.file != nil {
			sj.file.Close()
		}
	})
}

// cacheProjection derives the verdict cache from KindVerdict events.
type cacheProjection struct {
	c   *cache.Cache
	seq atomic.Uint64
}

func (p *cacheProjection) Name() string { return "cache" }
func (p *cacheProjection) Seq() uint64  { return p.seq.Load() }

func (p *cacheProjection) Apply(ev journal.Event) {
	if ev.Kind == journal.KindVerdict {
		var pe persistedEntry
		if json.Unmarshal(ev.Data, &pe) == nil && pe.Key != "" {
			if val, err := decodeCachedValue(pe.Kind, pe.Value); err == nil {
				// Re-putting a live-path entry is the stutter the
				// refinement invariant allows: same key, same value.
				p.c.Put(pe.Key, val)
			}
		}
	}
	p.seq.Store(ev.Seq)
}

// metricsProjection derives the request and response counters (and the
// latency histograms) from KindRequest/KindOutcome events.
type metricsProjection struct {
	m   *metrics
	seq atomic.Uint64
}

func (p *metricsProjection) Name() string { return "metrics" }
func (p *metricsProjection) Seq() uint64  { return p.seq.Load() }

func (p *metricsProjection) Apply(ev journal.Event) {
	switch ev.Kind {
	case journal.KindRequest:
		var re requestEvent
		if json.Unmarshal(ev.Data, &re) == nil {
			if c, ok := p.m.requests[re.Kind]; ok {
				c.Add(1)
			}
		}
	case journal.KindOutcome:
		var oe outcomeEvent
		if json.Unmarshal(ev.Data, &oe) == nil {
			p.m.applyOutcome(oe)
		}
	}
	p.seq.Store(ev.Seq)
}

// campaignProjection aggregates chaos campaign summaries.
type campaignProjection struct {
	campaigns atomic.Int64
	episodes  atomic.Int64
	passed    atomic.Int64
	failed    atomic.Int64
	seq       atomic.Uint64
}

func (p *campaignProjection) Name() string { return "campaigns" }
func (p *campaignProjection) Seq() uint64  { return p.seq.Load() }

func (p *campaignProjection) Apply(ev journal.Event) {
	if ev.Kind == journal.KindCampaign {
		var ce campaignEvent
		if json.Unmarshal(ev.Data, &ce) == nil {
			p.campaigns.Add(1)
			p.episodes.Add(int64(ce.Episodes))
			p.passed.Add(int64(ce.Passed))
			p.failed.Add(int64(ce.Failed))
		}
	}
	p.seq.Store(ev.Seq)
}

// recordRequest counts one request arrival: as a journal event when the
// journal is up (the metrics projection applies it), directly otherwise.
func (s *Server) recordRequest(kind string) {
	if s.journal != nil {
		if data, err := json.Marshal(requestEvent{Kind: kind}); err == nil {
			if s.journal.j.AppendAsync(journal.KindRequest, data) == nil {
				return
			}
		}
	}
	if c, ok := s.metrics.requests[kind]; ok {
		c.Add(1)
	}
}

// recordOutcome counts one request outcome. observeLatency marks
// successful computed checks, which also feed kind's latency histogram.
func (s *Server) recordOutcome(status, kind string, elapsed time.Duration, observeLatency bool) {
	oe := outcomeEvent{Status: status, Kind: kind,
		ElapsedUS: elapsed.Microseconds(), Latency: observeLatency}
	if s.journal != nil {
		if data, err := json.Marshal(oe); err == nil {
			if s.journal.j.AppendAsync(journal.KindOutcome, data) == nil {
				return
			}
		}
	}
	s.metrics.applyOutcome(oe)
}

// recordVerdict stores one computed verdict: synchronously in the cache
// (the live fast path — the projection's replay re-put is idempotent)
// and, when the journal is up, as a durable event appended *before* the
// caller writes the HTTP response. When recordVerdict returns, a
// verdict the client is about to see is either in the journal or the
// journal is down and the entry lives only in memory — the pre-journal
// behavior.
func (s *Server) recordVerdict(kind, key string, val any) {
	s.cache.Put(key, val)
	if s.journal == nil {
		return
	}
	pk, ok := cacheEntryKind(val)
	if !ok {
		return
	}
	raw, err := json.Marshal(val)
	if err != nil {
		return
	}
	data, err := json.Marshal(persistedEntry{Kind: pk, Key: key, Value: raw})
	if err != nil {
		return
	}
	_, _ = s.journal.j.Append(journal.KindVerdict, data) // error degrades to cache-only
}

// recordCampaign journals one completed chaos campaign summary.
func (s *Server) recordCampaign(rep *chaos.Report) {
	if s.journal == nil {
		return
	}
	data, err := json.Marshal(campaignEvent{
		Protocol: rep.Protocol, Episodes: rep.Episodes,
		Passed: rep.Passed, Failed: rep.Failed})
	if err != nil {
		return
	}
	_ = s.journal.j.AppendAsync(journal.KindCampaign, data)
}

// CampaignSummary is the /metrics view of the campaign projection.
type CampaignSummary struct {
	Campaigns int64 `json:"campaigns"`
	Episodes  int64 `json:"episodes"`
	Passed    int64 `json:"passed"`
	Failed    int64 `json:"failed"`
}

// JournalMetricsSnapshot is the /metrics journal section.
type JournalMetricsSnapshot struct {
	LastSeq       uint64            `json:"last_seq"`
	Depth         int64             `json:"journal_depth"`
	BatchP50      float64           `json:"journal_batch_size_p50"`
	BatchP99      float64           `json:"journal_batch_size_p99"`
	Records       int64             `json:"records"`
	Commits       int64             `json:"commits"`
	AppendErrors  int64             `json:"append_errors"`
	Ready         bool              `json:"ready"`
	Replay        journal.Stats     `json:"replay"`
	ProjectionLag map[string]uint64 `json:"projection_lag"`
	Campaigns     CampaignSummary   `json:"campaigns"`
}

// JournalEnabled reports whether this server is event-sourced.
func (s *Server) JournalEnabled() bool { return s.journal != nil }

// JournalLastSeq returns the journal head sequence number (0 without a
// journal).
func (s *Server) JournalLastSeq() uint64 {
	if s.journal == nil {
		return 0
	}
	return s.journal.j.LastSeq()
}

// EncodeJournalSuffix renders this server's verdict events with
// sequence numbers above from, capped at max events (≤ 0 means all), in
// journal event framing. It returns the encoded suffix, the cursor the
// caller should present next time (the last sequence number the scan
// covered — non-verdict events advance it without shipping), and the
// number of verdict events shipped. Fleet anti-entropy uses this as a
// cheap incremental alternative to full digest exchanges: a peer that
// remembers its cursor pulls exactly the verdicts it has not seen.
func (s *Server) EncodeJournalSuffix(from uint64, max int) (b []byte, next uint64, n int) {
	next = from
	if s.journal == nil {
		return nil, next, 0
	}
	var buf bytes.Buffer
	for _, ev := range s.journal.j.Events(from + 1) {
		if ev.Kind == journal.KindVerdict {
			if max > 0 && n >= max {
				break // ship the rest from this cursor next round
			}
			buf.Write(journal.EncodeEvent(ev))
			n++
		}
		next = ev.Seq
	}
	return buf.Bytes(), next, n
}

// ApplyJournalSuffix decodes a peer's journal suffix and inserts every
// verdict event that survives the framing, JSON, and kind checks — and
// is not already present — at the cold end of the cache, exactly like a
// digest-mode anti-entropy pull. The peer's sequence numbers are its
// own and are not replayed into this server's journal: pulled verdicts
// are warmth, not history, and a restart re-pulls them.
func (s *Server) ApplyJournalSuffix(b []byte) (loaded, skipped int64) {
	evs, stats := journal.DecodeEvents(b)
	skipped = int64(stats.Corrupt) + int64(stats.Stale)
	for _, ev := range evs {
		if ev.Kind != journal.KindVerdict {
			skipped++
			continue
		}
		var pe persistedEntry
		if err := json.Unmarshal(ev.Data, &pe); err != nil || pe.Key == "" {
			skipped++
			continue
		}
		val, err := decodeCachedValue(pe.Kind, pe.Value)
		if err != nil {
			skipped++
			continue
		}
		if s.cache.PutCold(pe.Key, val) {
			loaded++
		} else {
			skipped++
		}
	}
	return loaded, skipped
}

func (sj *serverJournal) metricsSnapshot() *JournalMetricsSnapshot {
	snap := &JournalMetricsSnapshot{
		LastSeq: sj.j.LastSeq(),
		Depth:   sj.j.Depth(),
		Ready:   sj.ready.Load(),
		Replay:  sj.j.ReplayStats(),
		Campaigns: CampaignSummary{
			Campaigns: sj.campProj.campaigns.Load(),
			Episodes:  sj.campProj.episodes.Load(),
			Passed:    sj.campProj.passed.Load(),
			Failed:    sj.campProj.failed.Load(),
		},
	}
	snap.BatchP50, snap.BatchP99 = sj.j.BatchPercentiles()
	snap.Records, snap.Commits, snap.AppendErrors = sj.j.Counters()
	snap.ProjectionLag = sj.engine.Lags()
	return snap
}
