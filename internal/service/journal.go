package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster/chaos"
	"repro/internal/journal"
	"repro/internal/service/cache"
)

// Event sourcing: when Config.JournalPath or Config.JournalBackend is
// set, the journal becomes checkd's single durable source of truth.
// Handlers stop mutating the verdict cache and /metrics counters
// directly; instead every request arrival, outcome, computed verdict,
// and chaos campaign is appended as a typed event, and three
// projections — cache, metrics, campaigns — derive the serving state by
// replaying the event history. Startup becomes replay: open the
// journal, drive the projections to convergence, then report ready.
//
// The refinement invariant: each projection's Apply is idempotent per
// sequence number, so replaying any prefix (snapshot checkpoint + tail,
// or the whole journal) converges to the same observable state. A crash
// can lose at most the acknowledged-but-unflushed suffix of one group
// commit — and verdict events are appended durably *before* the HTTP
// response is written, so a verdict a client saw is a verdict replay
// reconstructs.
//
// Without a journal configured, the record* seam degrades to the direct
// counter/cache mutations checkd has always done; every journal append
// failure degrades the same way, so a full disk costs event history,
// never a request.

// Outcome statuses, mirroring the /metrics response counters.
const (
	statusOK         = "ok"
	statusBadRequest = "bad_request"
	statusTimeout    = "timeout"
	statusOverload   = "overload"
	statusInternal   = "internal"
)

// requestEvent is the payload of a journal.KindRequest event.
type requestEvent struct {
	Kind string `json:"kind"`
}

// outcomeEvent is the payload of a journal.KindOutcome event. Latency
// marks outcomes that feed the per-kind latency histogram (successful
// computed checks only, matching the live path).
type outcomeEvent struct {
	Status    string `json:"status"`
	Kind      string `json:"kind,omitempty"`
	ElapsedUS int64  `json:"elapsed_us,omitempty"`
	Latency   bool   `json:"latency,omitempty"`
}

// campaignEvent is the payload of a journal.KindCampaign event: the
// summary row of one completed chaos campaign.
type campaignEvent struct {
	Protocol string `json:"protocol"`
	Episodes int    `json:"episodes"`
	Passed   int    `json:"passed"`
	Failed   int    `json:"failed"`
}

// A verdict event's payload is a persistedEntry — the exact shape the
// cache snapshot file and anti-entropy sync already use, so the three
// durability paths share one codec and one strictness policy.

// serverJournal bundles the journal, its projection engine, and the
// projections deriving this server's state.
type serverJournal struct {
	j      *journal.Journal
	engine *journal.Engine
	file   *journal.FileBackend // non-nil when opened from JournalPath

	cacheProj   *cacheProjection
	metricsProj *metricsProjection
	campProj    *campaignProjection

	ready atomic.Bool // projections converged on the replayed history
	// ckptPoke wakes the retention checkpoint loop ahead of its ticker —
	// the journal sends here (non-blocking) when it wants coverage to
	// advance because the disk budget is under pressure.
	ckptPoke chan struct{}
	stop     chan struct{}
	wg       sync.WaitGroup
	closeOne sync.Once
}

// journalReplayPoll is how often the readiness waiter re-checks
// convergence while replaying.
const journalReplayPoll = 2 * time.Second

// newServerJournal opens the journal and starts the projections. It
// never fails the server: an unopenable journal logs and returns nil,
// degrading to direct bookkeeping.
func newServerJournal(s *Server, cfg Config) *serverJournal {
	b := cfg.JournalBackend
	var file *journal.FileBackend
	if b == nil {
		f, err := journal.OpenFile(cfg.JournalPath)
		if err != nil {
			s.logf("journal: open %s: %v (running without a journal)", cfg.JournalPath, err)
			return nil
		}
		file, b = f, f
	}
	opts := journal.Options{
		MaxBatch:           cfg.JournalMaxBatch,
		MaxBytes:           cfg.JournalMaxBytes,
		CheckpointInterval: cfg.JournalCheckpointInterval,
	}
	j, err := journal.Open(b, opts)
	if err != nil {
		s.logf("journal: %v (running without a journal)", err)
		if file != nil {
			file.Close()
		}
		return nil
	}
	sj := &serverJournal{j: j, file: file,
		ckptPoke: make(chan struct{}, 1), stop: make(chan struct{})}
	sj.engine = journal.NewEngine(j, cfg.JournalMaxLag)
	// Projections are a retention floor: compaction never drops an event
	// the slowest projection has not applied, even under disk pressure.
	j.SetRetainFunc(sj.engine.MinSeq)

	// The cache projection resumes from the snapshot file's checkpoint:
	// the persister already materialized the cache up to that sequence
	// number, so replay covers only the tail. Metrics and campaigns are
	// memory-only and always replay the full history — with a journal,
	// /metrics counters are journal-lifetime, not process-lifetime.
	sj.cacheProj = &cacheProjection{c: s.cache}
	if s.persister != nil {
		sj.cacheProj.seq.Store(s.persister.loadedCheckpoint.Load())
		s.persister.setJournalSeq(sj.cacheProj.Seq)
	}
	if cfg.JournalMaxBytes > 0 {
		if s.persister != nil {
			// The snapshot file on disk already covers its recorded
			// checkpoint — seed coverage so a restart can compact
			// immediately instead of waiting for the first snapshot.
			j.SetCovered(s.persister.loadedCheckpoint.Load())
			j.SetCheckpointRequest(func() {
				select {
				case sj.ckptPoke <- struct{}{}:
				default: // a poke is already pending
				}
			})
			sj.wg.Add(1)
			go sj.checkpointLoop(s.persister, cfg.JournalCheckpointInterval)
		} else {
			// No snapshots means coverage never advances: the budget can
			// only shed, never compact. Honor the bound but say so.
			s.logf("journal: -journal-max-bytes set without a cache snapshot path; " +
				"the budget can only shed async events, never compact")
		}
	}
	sj.metricsProj = &metricsProjection{m: s.metrics}
	sj.campProj = &campaignProjection{}
	sj.engine.Register(sj.cacheProj)
	sj.engine.Register(sj.metricsProj)
	sj.engine.Register(sj.campProj)

	if st := j.ReplayStats(); st.Events > 0 || st.Corrupt > 0 {
		s.logf("journal: replayed %d events (corrupt %d, stale %d, resyncs %d) from %d bytes",
			st.Events, st.Corrupt, st.Stale, st.Resyncs, st.Bytes)
	}
	go func() {
		for !sj.engine.WaitCaughtUp(journalReplayPoll) {
			select {
			case <-sj.stop:
				return
			default:
			}
		}
		sj.ready.Store(true)
	}()
	return sj
}

// checkpointLoop is the retention side of cache persistence: on a
// ticker — and immediately when the journal pokes under disk pressure —
// it snapshots the cache and publishes the snapshot's journal
// checkpoint as the journal's covered sequence. Every attempt reports,
// even a failed one (re-publishing the old coverage), so a writer
// blocked in backpressure always observes the attempt and re-evaluates
// instead of waiting forever on a snapshot that cannot land.
func (sj *serverJournal) checkpointLoop(p *cachePersister, interval time.Duration) {
	defer sj.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-sj.stop:
			return
		case <-t.C:
		case <-sj.ckptPoke:
		}
		if ckpt, ok := p.snapshot(); ok {
			sj.j.SetCovered(ckpt)
		} else {
			sj.j.SetCovered(sj.j.Covered())
		}
	}
}

// close drains the projections, then the journal, then the file.
// Engine first: its final catch-up needs the journal still readable.
func (sj *serverJournal) close() {
	sj.closeOne.Do(func() {
		close(sj.stop)
		sj.wg.Wait()
		sj.engine.Close()
		sj.j.Close()
		if sj.file != nil {
			sj.file.Close()
		}
	})
}

// cacheProjection derives the verdict cache from KindVerdict events.
type cacheProjection struct {
	c   *cache.Cache
	seq atomic.Uint64
}

func (p *cacheProjection) Name() string { return "cache" }
func (p *cacheProjection) Seq() uint64  { return p.seq.Load() }

func (p *cacheProjection) Apply(ev journal.Event) {
	if ev.Kind == journal.KindVerdict {
		var pe persistedEntry
		if json.Unmarshal(ev.Data, &pe) == nil && pe.Key != "" {
			if val, err := decodeCachedValue(pe.Kind, pe.Value); err == nil {
				// Re-putting a live-path entry is the stutter the
				// refinement invariant allows: same key, same value.
				p.c.Put(pe.Key, val)
			}
		}
	}
	p.seq.Store(ev.Seq)
}

// metricsProjection derives the request and response counters (and the
// latency histograms) from KindRequest/KindOutcome events.
type metricsProjection struct {
	m   *metrics
	seq atomic.Uint64
}

func (p *metricsProjection) Name() string { return "metrics" }
func (p *metricsProjection) Seq() uint64  { return p.seq.Load() }

func (p *metricsProjection) Apply(ev journal.Event) {
	switch ev.Kind {
	case journal.KindRequest:
		var re requestEvent
		if json.Unmarshal(ev.Data, &re) == nil {
			if c, ok := p.m.requests[re.Kind]; ok {
				c.Add(1)
			}
		}
	case journal.KindOutcome:
		var oe outcomeEvent
		if json.Unmarshal(ev.Data, &oe) == nil {
			p.m.applyOutcome(oe)
		}
	}
	p.seq.Store(ev.Seq)
}

// campaignProjection aggregates chaos campaign summaries.
type campaignProjection struct {
	campaigns atomic.Int64
	episodes  atomic.Int64
	passed    atomic.Int64
	failed    atomic.Int64
	seq       atomic.Uint64
}

func (p *campaignProjection) Name() string { return "campaigns" }
func (p *campaignProjection) Seq() uint64  { return p.seq.Load() }

func (p *campaignProjection) Apply(ev journal.Event) {
	if ev.Kind == journal.KindCampaign {
		var ce campaignEvent
		if json.Unmarshal(ev.Data, &ce) == nil {
			p.campaigns.Add(1)
			p.episodes.Add(int64(ce.Episodes))
			p.passed.Add(int64(ce.Passed))
			p.failed.Add(int64(ce.Failed))
		}
	}
	p.seq.Store(ev.Seq)
}

// recordRequest counts one request arrival: as a journal event when the
// journal is up (the metrics projection applies it), directly otherwise.
func (s *Server) recordRequest(kind string) {
	if s.journal != nil {
		if data, err := json.Marshal(requestEvent{Kind: kind}); err == nil {
			if s.journal.j.AppendAsync(journal.KindRequest, data) == nil {
				return
			}
		}
	}
	if c, ok := s.metrics.requests[kind]; ok {
		c.Add(1)
	}
}

// recordOutcome counts one request outcome. observeLatency marks
// successful computed checks, which also feed kind's latency histogram.
func (s *Server) recordOutcome(status, kind string, elapsed time.Duration, observeLatency bool) {
	oe := outcomeEvent{Status: status, Kind: kind,
		ElapsedUS: elapsed.Microseconds(), Latency: observeLatency}
	if s.journal != nil {
		if data, err := json.Marshal(oe); err == nil {
			if s.journal.j.AppendAsync(journal.KindOutcome, data) == nil {
				return
			}
		}
	}
	s.metrics.applyOutcome(oe)
}

// recordVerdict stores one computed verdict: synchronously in the cache
// (the live fast path — the projection's replay re-put is idempotent)
// and, when the journal is up, as a durable event appended *before* the
// caller writes the HTTP response. When recordVerdict returns, a
// verdict the client is about to see is either in the journal or the
// journal is down and the entry lives only in memory — the pre-journal
// behavior.
func (s *Server) recordVerdict(kind, key string, val any) {
	s.cache.Put(key, val)
	if s.journal == nil {
		return
	}
	pk, ok := cacheEntryKind(val)
	if !ok {
		return
	}
	raw, err := json.Marshal(val)
	if err != nil {
		return
	}
	data, err := json.Marshal(persistedEntry{Kind: pk, Key: key, Value: raw})
	if err != nil {
		return
	}
	_, _ = s.journal.j.Append(journal.KindVerdict, data) // error degrades to cache-only
}

// recordCampaign journals one completed chaos campaign summary.
func (s *Server) recordCampaign(rep *chaos.Report) {
	if s.journal == nil {
		return
	}
	data, err := json.Marshal(campaignEvent{
		Protocol: rep.Protocol, Episodes: rep.Episodes,
		Passed: rep.Passed, Failed: rep.Failed})
	if err != nil {
		return
	}
	_ = s.journal.j.AppendAsync(journal.KindCampaign, data)
}

// CampaignSummary is the /metrics view of the campaign projection.
type CampaignSummary struct {
	Campaigns int64 `json:"campaigns"`
	Episodes  int64 `json:"episodes"`
	Passed    int64 `json:"passed"`
	Failed    int64 `json:"failed"`
}

// JournalMetricsSnapshot is the /metrics journal section.
type JournalMetricsSnapshot struct {
	LastSeq       uint64            `json:"last_seq"`
	Depth         int64             `json:"journal_depth"`
	BatchP50      float64           `json:"journal_batch_size_p50"`
	BatchP99      float64           `json:"journal_batch_size_p99"`
	Records       int64             `json:"records"`
	Commits       int64             `json:"commits"`
	AppendErrors  int64             `json:"append_errors"`
	Ready         bool              `json:"ready"`
	Replay        journal.Stats     `json:"replay"`
	ProjectionLag map[string]uint64 `json:"projection_lag"`
	Campaigns     CampaignSummary   `json:"campaigns"`
	// Retention is present when a disk budget is configured
	// (Config.JournalMaxBytes > 0): usage against the budget, the
	// compaction horizon, and the degradation-ladder counters, including
	// journal_shed_total.
	Retention *journal.RetentionStats `json:"retention,omitempty"`
}

// journalQueryMaxEvents bounds one GET /v1/journal page: a range query
// over a long history answers in pages, never one unbounded response.
const journalQueryMaxEvents = 512

// journalEventView is one decoded event in a GET /v1/journal response.
type journalEventView struct {
	Seq  uint64          `json:"seq"`
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data,omitempty"`
}

// JournalRangeResponse is the GET /v1/journal response: the decoded
// events with sequence numbers in [from, to], plus enough journal
// geometry (horizon, head) for the client to interpret absences —
// sequences at or below the horizon were compacted away, not lost.
type JournalRangeResponse struct {
	From    uint64             `json:"from"`
	To      uint64             `json:"to"`
	Horizon uint64             `json:"horizon"`
	LastSeq uint64             `json:"last_seq"`
	Events  []journalEventView `json:"events"`
	// Truncated is set when the range held more than one page; NextFrom
	// is the cursor to resume from.
	Truncated bool   `json:"truncated,omitempty"`
	NextFrom  uint64 `json:"next_from,omitempty"`
}

// handleJournalRange serves GET /v1/journal?from=N&to=M: the journaled
// event history as decoded JSON, paged at journalQueryMaxEvents. Both
// bounds are inclusive and optional (from defaults to 1, to to the
// journal head). It shares ServeHTTP's request-id and panic middleware
// like every other endpoint.
func (s *Server) handleJournalRange(w http.ResponseWriter, r *http.Request) {
	if s.journal == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "this server runs without a journal (no -journal-path)"})
		return
	}
	parse := func(name string, def uint64) (uint64, bool) {
		raw := r.URL.Query().Get(name)
		if raw == "" {
			return def, true
		}
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{
				Error: fmt.Sprintf("bad %s=%q: %v", name, raw, err)})
			return 0, false
		}
		return v, true
	}
	last := s.journal.j.LastSeq()
	from, ok := parse("from", 1)
	if !ok {
		return
	}
	to, ok := parse("to", last)
	if !ok {
		return
	}
	if from < 1 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad from=0: sequence numbers start at 1"})
		return
	}
	if to < from {
		writeJSON(w, http.StatusBadRequest, errorBody{
			Error: fmt.Sprintf("bad range: from=%d > to=%d", from, to)})
		return
	}
	resp := JournalRangeResponse{
		From:    from,
		To:      to,
		Horizon: s.journal.j.Horizon(),
		LastSeq: last,
		Events:  []journalEventView{}, // render [] rather than null
	}
	for _, ev := range s.journal.j.Events(from) {
		if ev.Seq > to {
			break
		}
		if len(resp.Events) >= journalQueryMaxEvents {
			resp.Truncated = true
			resp.NextFrom = ev.Seq
			break
		}
		view := journalEventView{Seq: ev.Seq, Kind: string(ev.Kind)}
		if json.Valid(ev.Data) {
			view.Data = json.RawMessage(ev.Data)
		} else if raw, err := json.Marshal(string(ev.Data)); err == nil {
			// Non-JSON payloads (nothing this server writes, but the
			// journal format allows them) ship as a JSON string.
			view.Data = raw
		}
		resp.Events = append(resp.Events, view)
	}
	writeJSON(w, http.StatusOK, resp)
}

// JournalEnabled reports whether this server is event-sourced.
func (s *Server) JournalEnabled() bool { return s.journal != nil }

// JournalLastSeq returns the journal head sequence number (0 without a
// journal).
func (s *Server) JournalLastSeq() uint64 {
	if s.journal == nil {
		return 0
	}
	return s.journal.j.LastSeq()
}

// EncodeJournalSuffix renders this server's verdict events with
// sequence numbers above from, capped at max events (≤ 0 means all), in
// journal event framing. It returns the encoded suffix, the cursor the
// caller should present next time (the last sequence number the scan
// covered — non-verdict events advance it without shipping), the number
// of verdict events shipped, and whether the request fell into a
// compaction hole: from below the retention horizon means events the
// cursor expects no longer exist, so the caller must fall back to a
// full digest exchange instead of trusting an incremental pull that
// silently skipped history. Fleet anti-entropy uses this as a cheap
// incremental alternative to full digest exchanges: a peer that
// remembers its cursor pulls exactly the verdicts it has not seen.
func (s *Server) EncodeJournalSuffix(from uint64, max int) (b []byte, next uint64, n int, hole bool) {
	next = from
	if s.journal == nil {
		return nil, next, 0, false
	}
	if h := s.journal.j.Horizon(); from < h {
		// The events in (from, h] were compacted away; an incremental
		// reply would be a silent gap. Report the hole and where the
		// journal now begins so the caller can digest-sync and resume.
		return nil, h, 0, true
	}
	var buf bytes.Buffer
	for _, ev := range s.journal.j.Events(from + 1) {
		if ev.Kind == journal.KindVerdict {
			if max > 0 && n >= max {
				break // ship the rest from this cursor next round
			}
			buf.Write(journal.EncodeEvent(ev))
			n++
		}
		next = ev.Seq
	}
	return buf.Bytes(), next, n, false
}

// JournalHorizon returns the compaction horizon: the highest sequence
// number dropped by retention (0 without a journal or before any
// compaction).
func (s *Server) JournalHorizon() uint64 {
	if s.journal == nil {
		return 0
	}
	return s.journal.j.Horizon()
}

// CoverJournalTo publishes seq as covered-by-snapshot, making the
// prefix up to it eligible for compaction. Fleet replicas (journal
// backends without a cache persister) use it to drive retention from
// their own snapshot schedule; tests use it to set up compaction
// deterministically.
func (s *Server) CoverJournalTo(seq uint64) {
	if s.journal != nil {
		s.journal.j.SetCovered(seq)
	}
}

// CompactJournal runs one synchronous compaction pass and reports the
// resulting retention stats (zero value without a journal).
func (s *Server) CompactJournal() journal.RetentionStats {
	if s.journal == nil {
		return journal.RetentionStats{}
	}
	return s.journal.j.Compact()
}

// VerdictKeysAsOf replays the journal up to seq (inclusive) and returns
// the cache keys the verdict history had established by then, in event
// order. It answers "what did this server know as of sequence N" —
// time-travel debugging over the event-sourced history. Sequences below
// the compaction horizon return journal.ErrCompacted: that history was
// retired by retention and can no longer be reconstructed.
func (s *Server) VerdictKeysAsOf(seq uint64) ([]string, error) {
	if s.journal == nil {
		return nil, nil
	}
	evs, err := s.journal.j.ReplayTo(seq)
	if err != nil {
		return nil, err
	}
	var keys []string
	for _, ev := range evs {
		if ev.Kind != journal.KindVerdict {
			continue
		}
		var pe persistedEntry
		if json.Unmarshal(ev.Data, &pe) == nil && pe.Key != "" {
			keys = append(keys, pe.Key)
		}
	}
	return keys, nil
}

// ApplyJournalSuffix decodes a peer's journal suffix and inserts every
// verdict event that survives the framing, JSON, and kind checks — and
// is not already present — at the cold end of the cache, exactly like a
// digest-mode anti-entropy pull. The peer's sequence numbers are its
// own and are not replayed into this server's journal: pulled verdicts
// are warmth, not history, and a restart re-pulls them.
func (s *Server) ApplyJournalSuffix(b []byte) (loaded, skipped int64) {
	evs, stats := journal.DecodeEvents(b)
	skipped = int64(stats.Corrupt) + int64(stats.Stale)
	for _, ev := range evs {
		if ev.Kind != journal.KindVerdict {
			skipped++
			continue
		}
		var pe persistedEntry
		if err := json.Unmarshal(ev.Data, &pe); err != nil || pe.Key == "" {
			skipped++
			continue
		}
		val, err := decodeCachedValue(pe.Kind, pe.Value)
		if err != nil {
			skipped++
			continue
		}
		if s.cache.PutCold(pe.Key, val) {
			loaded++
		} else {
			skipped++
		}
	}
	return loaded, skipped
}

func (sj *serverJournal) metricsSnapshot() *JournalMetricsSnapshot {
	snap := &JournalMetricsSnapshot{
		LastSeq: sj.j.LastSeq(),
		Depth:   sj.j.Depth(),
		Ready:   sj.ready.Load(),
		Replay:  sj.j.ReplayStats(),
		Campaigns: CampaignSummary{
			Campaigns: sj.campProj.campaigns.Load(),
			Episodes:  sj.campProj.episodes.Load(),
			Passed:    sj.campProj.passed.Load(),
			Failed:    sj.campProj.failed.Load(),
		},
	}
	snap.BatchP50, snap.BatchP99 = sj.j.BatchPercentiles()
	snap.Records, snap.Commits, snap.AppendErrors = sj.j.Counters()
	snap.ProjectionLag = sj.engine.Lags()
	if ret := sj.j.Retention(); ret.MaxBytes > 0 {
		snap.Retention = &ret
	}
	return snap
}
