package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/service/cache"
)

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func mustUnmarshal(t *testing.T, raw []byte, into any) {
	t.Helper()
	if err := json.Unmarshal(raw, into); err != nil {
		t.Fatalf("unmarshal %s: %v", raw, err)
	}
}

func containsStr(b []byte, sub string) bool { return bytes.Contains(b, []byte(sub)) }

// ringsimBody builds a small deterministic ringsim request; distinct
// seeds give distinct cache keys, so each seed is one computed verdict.
func ringsimBody(seed int64) map[string]any {
	return map[string]any{
		"family": "dijkstra3", "procs": 3, "seed": seed,
		"runs": 2, "steps": 2000, "faults": 1,
	}
}

// ringsimKey mirrors handleRingsim's cache key for ringsimBody(seed).
func ringsimKey(seed int64) string {
	return cache.Key(kindRingsim, "dijkstra3", "random",
		"3", "3", fmt.Sprint(seed), "1", "2000", "2")
}

func waitJournalIdle(t *testing.T, svc *Server) {
	t.Helper()
	// Converged = every async event flushed and applied: depth drained
	// and all projections at the journal head.
	waitFor(t, func() bool { return svc.journal.j.Depth() == 0 })
	if !svc.journal.engine.WaitCaughtUp(10 * time.Second) {
		t.Fatalf("projections never converged; lags %v", svc.journal.engine.Lags())
	}
}

// TestServiceJournalReplayRestoresState: a journaled server's verdict
// cache and /metrics counters survive restart by replay alone — no
// cache snapshot file involved.
func TestServiceJournalReplayRestoresState(t *testing.T) {
	backend := journal.NewMemBackend(nil)
	svc := New(Config{Workers: 2, QueueDepth: 16, JournalBackend: backend})
	ts := httptest.NewServer(svc)
	for seed := int64(0); seed < 3; seed++ {
		resp, body := postJSON(t, ts.URL+"/v1/ringsim", ringsimBody(seed))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: %d: %s", seed, resp.StatusCode, body)
		}
	}
	waitJournalIdle(t, svc)
	golden := fetchMetrics(t, ts.URL)
	ts.Close()
	svc.Close()

	// Restart on the same journal bytes: replay must reconstruct the
	// cache (hits, no recompute) and the counters (journal-lifetime).
	svc2 := New(Config{Workers: 2, QueueDepth: 16, JournalBackend: backend})
	defer svc2.Close()
	ts2 := httptest.NewServer(svc2)
	defer ts2.Close()
	waitFor(t, func() bool { return svc2.journal.ready.Load() })
	if st := svc2.journal.j.ReplayStats(); st.Events == 0 {
		t.Fatalf("restart replayed nothing: %+v", st)
	}
	replayed := fetchMetrics(t, ts2.URL)
	if replayed.Requests[kindRingsim] != golden.Requests[kindRingsim] {
		t.Fatalf("replayed requests.ringsim = %d, want %d",
			replayed.Requests[kindRingsim], golden.Requests[kindRingsim])
	}
	if replayed.Responses.OK != golden.Responses.OK {
		t.Fatalf("replayed ok = %d, want %d", replayed.Responses.OK, golden.Responses.OK)
	}
	if got, want := replayed.Latency[kindRingsim].Count, golden.Latency[kindRingsim].Count; got != want {
		t.Fatalf("replayed latency count = %d, want %d", got, want)
	}
	for seed := int64(0); seed < 3; seed++ {
		resp, body := postJSON(t, ts2.URL+"/v1/ringsim", ringsimBody(seed))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replayed seed %d: %d: %s", seed, resp.StatusCode, body)
		}
		var rr RingsimResponse
		mustUnmarshal(t, body, &rr)
		if !rr.Cached {
			t.Fatalf("seed %d not served from replayed cache: %s", seed, body)
		}
	}
}

// TestServiceJournalReadyzGating: while projections replay, /readyz
// reports 503 "replaying"; once converged it flips ready.
func TestServiceJournalReadyzGating(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 4,
		JournalBackend: journal.NewMemBackend(nil)})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	waitFor(t, func() bool { return svc.journal.ready.Load() })

	// White-box: force the pre-convergence state to pin the 503 shape.
	svc.journal.ready.Store(false)
	resp, body := getJSON(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("replaying readyz = %d: %s", resp.StatusCode, body)
	}
	if want := `"status":"replaying"`; !containsStr(body, want) {
		t.Fatalf("readyz body %s missing %s", body, want)
	}
	svc.journal.ready.Store(true)
	resp, body = getJSON(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ready readyz = %d: %s", resp.StatusCode, body)
	}
}

// TestServiceCrashReplayEquivalence is the acceptance scenario: a
// journaled checkd under sequential load over a torn backend (the
// storage-fault model of a hard kill mid-batch: one append persists a
// prefix but acks, then the disk is dead), restarted on the surviving
// bytes, must match a reference run's golden state exactly minus the
// acknowledged-but-unflushed suffix — bounded by one batch plus the
// fire-and-forget events queued at death.
func TestServiceCrashReplayEquivalence(t *testing.T) {
	const maxBatch = 8
	const maxRequests = 12

	// Crash run: issue requests until the backend tears.
	tb := journal.NewTornBackend(10, 2)
	crash := New(Config{Workers: 2, QueueDepth: 16,
		JournalBackend: tb, JournalMaxBatch: maxBatch})
	tsCrash := httptest.NewServer(crash)
	done := 0
	for seed := int64(0); seed < maxRequests; seed++ {
		resp, body := postJSON(t, tsCrash.URL+"/v1/ringsim", ringsimBody(seed))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("crash run seed %d: %d: %s", seed, resp.StatusCode, body)
		}
		done++
		if tb.Torn() {
			break
		}
	}
	if !tb.Torn() {
		t.Fatalf("backend never tore within %d requests", maxRequests)
	}
	tsCrash.Close()
	// Hard kill: no Close, no drain — only the torn bytes survive.
	surviving := tb.Bytes()

	// Reference run: the same done-request workload on a healthy
	// journal, drained cleanly. This is the golden state.
	ref := New(Config{Workers: 2, QueueDepth: 16,
		JournalBackend: journal.NewMemBackend(nil), JournalMaxBatch: maxBatch})
	tsRef := httptest.NewServer(ref)
	for seed := int64(0); seed < int64(done); seed++ {
		resp, body := postJSON(t, tsRef.URL+"/v1/ringsim", ringsimBody(seed))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reference seed %d: %d: %s", seed, resp.StatusCode, body)
		}
	}
	waitJournalIdle(t, ref)
	golden := fetchMetrics(t, tsRef.URL)

	// Restart on the surviving bytes and let the projections converge.
	restarted := New(Config{Workers: 2, QueueDepth: 16,
		JournalBackend: journal.NewMemBackend(surviving), JournalMaxBatch: maxBatch})
	defer restarted.Close()
	tsRe := httptest.NewServer(restarted)
	defer tsRe.Close()
	waitFor(t, func() bool { return restarted.journal.ready.Load() })
	replayed := fetchMetrics(t, tsRe.URL)

	// The acked-but-unflushed suffix: the torn batch (≤ maxBatch
	// records) plus the handful of async events queued when the disk
	// died. Everything else must match the golden state exactly.
	const slack = maxBatch + 4

	// Verdict cache: a subset of the reference, missing at most the
	// suffix, and every surviving entry equal to the reference verdict.
	refKeys := make(map[string]bool)
	for _, k := range ref.CacheKeys() {
		refKeys[k] = true
	}
	missing := 0
	for seed := int64(0); seed < int64(done); seed++ {
		key := ringsimKey(seed)
		if !refKeys[key] {
			t.Fatalf("reference run lacks key for seed %d", seed)
		}
		got, ok := restarted.cache.Get(key)
		if !ok {
			missing++
			continue
		}
		want, _ := ref.cache.Get(key)
		g, w := got.(RingsimResponse), want.(RingsimResponse)
		if g.Runs != w.Runs || g.Converged != w.Converged ||
			g.MeanSteps != w.MeanSteps || g.MaxSteps != w.MaxSteps || g.Protocol != w.Protocol {
			t.Fatalf("seed %d: replayed verdict %+v diverges from reference %+v", seed, g, w)
		}
	}
	if missing > slack {
		t.Fatalf("%d verdicts missing after replay; the unflushed suffix must be ≤ %d", missing, slack)
	}
	if extra := len(restarted.CacheKeys()); extra > done {
		t.Fatalf("replay invented %d cache entries for %d requests", extra, done)
	}

	// Counters: journal-lifetime, equal to the golden run minus the
	// lost suffix — never more, never behind by more than the suffix.
	counterDiff := func(name string, golden, replayed int64) {
		t.Helper()
		if replayed > golden || golden-replayed > slack {
			t.Fatalf("%s: replayed %d vs golden %d (allowed suffix %d)", name, replayed, golden, slack)
		}
	}
	counterDiff("requests.ringsim", golden.Requests[kindRingsim], replayed.Requests[kindRingsim])
	counterDiff("responses.ok", golden.Responses.OK, replayed.Responses.OK)
	counterDiff("latency.count", golden.Latency[kindRingsim].Count, replayed.Latency[kindRingsim].Count)
	if replayed.Responses.Internal != 0 || replayed.Responses.BadRequest != 0 {
		t.Fatalf("replay manufactured error outcomes: %+v", replayed.Responses)
	}
	if replayed.Journal == nil || replayed.Journal.Replay.Corrupt == 0 {
		t.Fatalf("restart should have seen the torn tail: %+v", replayed.Journal)
	}
}

// TestServiceJournalMetricsGauges: the /metrics journal section carries
// the depth, batch-size percentiles, and per-projection lag gauges.
func TestServiceJournalMetricsGauges(t *testing.T) {
	svc := New(Config{Workers: 2, QueueDepth: 16,
		JournalBackend: journal.NewMemBackend(nil)})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	resp, body := postJSON(t, ts.URL+"/v1/ringsim", ringsimBody(7))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ringsim: %d: %s", resp.StatusCode, body)
	}
	waitJournalIdle(t, svc)
	snap := fetchMetrics(t, ts.URL)
	j := snap.Journal
	if j == nil {
		t.Fatal("journaled server reported no journal metrics")
	}
	if j.LastSeq == 0 || j.Records == 0 || j.Commits == 0 {
		t.Fatalf("journal counters empty: %+v", j)
	}
	if j.Depth != 0 {
		t.Fatalf("journal_depth = %d after idle drain", j.Depth)
	}
	if j.BatchP50 < 1 || j.BatchP99 < j.BatchP50 {
		t.Fatalf("batch percentiles p50=%v p99=%v", j.BatchP50, j.BatchP99)
	}
	for _, proj := range []string{"cache", "metrics", "campaigns"} {
		lag, ok := j.ProjectionLag[proj]
		if !ok {
			t.Fatalf("projection_lag missing %q: %+v", proj, j.ProjectionLag)
		}
		if lag != 0 {
			t.Fatalf("projection %q lag = %d after convergence", proj, lag)
		}
	}
	if !j.Ready {
		t.Fatal("journal section not ready after convergence")
	}
}

// TestServiceJournalCheckpointSnapshot: with both a cache snapshot file
// and a journal, the snapshot records the cache projection's journal
// checkpoint, and a restart resumes replay from it instead of seq 0 —
// the interval-snapshot race window is closed by the journal tail, not
// by snapshot timing.
func TestServiceJournalCheckpointSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	backend := journal.NewMemBackend(nil)
	mk := func() *Server {
		return New(Config{Workers: 2, QueueDepth: 16,
			CachePath: path, CacheSnapshotInterval: time.Hour,
			JournalBackend: backend})
	}
	svc := mk()
	ts := httptest.NewServer(svc)
	for seed := int64(0); seed < 2; seed++ {
		resp, body := postJSON(t, ts.URL+"/v1/ringsim", ringsimBody(seed))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: %d: %s", seed, resp.StatusCode, body)
		}
	}
	waitJournalIdle(t, svc)
	wantCkpt := svc.journal.cacheProj.Seq()
	if wantCkpt == 0 {
		t.Fatal("cache projection never advanced")
	}
	ts.Close()
	svc.Close() // final snapshot carries the final checkpoint

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	entries, ckpt, skipped := decodeCacheEntries(raw)
	if skipped != 0 || len(entries) != 2 {
		t.Fatalf("snapshot decode: %d entries, %d skipped", len(entries), skipped)
	}
	if ckpt != wantCkpt {
		t.Fatalf("snapshot checkpoint = %d, want %d", ckpt, wantCkpt)
	}

	svc2 := mk()
	defer svc2.Close()
	waitFor(t, func() bool { return svc2.journal.ready.Load() })
	if got := svc2.persister.loadedCheckpoint.Load(); got != wantCkpt {
		t.Fatalf("restart loaded checkpoint %d, want %d", got, wantCkpt)
	}
	// The snapshot already materialized both entries; replay resumed
	// above the checkpoint, and both verdicts serve as hits.
	ts2 := httptest.NewServer(svc2)
	defer ts2.Close()
	for seed := int64(0); seed < 2; seed++ {
		resp, body := postJSON(t, ts2.URL+"/v1/ringsim", ringsimBody(seed))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("restart seed %d: %d: %s", seed, resp.StatusCode, body)
		}
		var rr RingsimResponse
		mustUnmarshal(t, body, &rr)
		if !rr.Cached {
			t.Fatalf("seed %d recomputed after checkpointed restart: %s", seed, body)
		}
	}
}
