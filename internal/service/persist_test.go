package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster/chaos"
	"repro/internal/cluster/store"
	"repro/internal/service/cache"
)

// TestCacheCodecRoundTrip: every cacheable response kind survives the
// encode/decode cycle with its concrete type, key, and order intact —
// the order matters because a reload that Puts sequentially must
// reconstruct the LRU recency.
func TestCacheCodecRoundTrip(t *testing.T) {
	in := []cache.Entry{
		{Key: "k-selfstab", Val: SelfStabResponse{Program: "abc", States: 27}},
		{Key: "k-refine", Val: RefineResponse{States: 9, Holds: true}},
		{Key: "k-ringsim", Val: RingsimResponse{Protocol: "dijkstra3(5)", Runs: 10}},
		{Key: "k-lint", Val: LintResponse{Program: "def", AnalyzerVersion: "v1"}},
		{Key: "k-cluster", Val: ClusterResponse{Protocol: "dijkstra3(5)", Procs: 5, Start: []int{1, 2}}},
		{Key: "k-chaos", Val: ChaosResponse{Report: chaos.Report{Episodes: 2, Pass: true}}},
	}
	out, _, skipped := decodeCacheEntries(encodeCacheEntries(0, in))
	if skipped != 0 {
		t.Fatalf("clean stream reported %d skipped records", skipped)
	}
	if len(out) != len(in) {
		t.Fatalf("round-tripped %d of %d entries", len(out), len(in))
	}
	for i, e := range out {
		if e.Key != in[i].Key {
			t.Fatalf("entry %d: key %q, want %q (order must be preserved)", i, e.Key, in[i].Key)
		}
		// Every value must come back as the concrete struct the handlers
		// cache, or serveFromCache's cachedResponse assertion would panic.
		if _, ok := e.Val.(cachedResponse); !ok {
			t.Fatalf("entry %d: reloaded as %T, which is not a cachedResponse", i, e.Val)
		}
	}
	if v := out[4].Val.(ClusterResponse); v.Procs != 5 || len(v.Start) != 2 {
		t.Fatalf("cluster entry mangled: %+v", v)
	}
	if v := out[5].Val.(ChaosResponse); v.Episodes != 2 || !v.Pass {
		t.Fatalf("chaos entry mangled: %+v", v)
	}
}

// TestCacheCodecSkipsCorrupt: a corrupted record costs exactly itself.
// The decoder resynchronizes on the record magic and keeps loading, and
// pure garbage loads as an empty cache rather than an error.
func TestCacheCodecSkipsCorrupt(t *testing.T) {
	in := []cache.Entry{
		{Key: "a", Val: RingsimResponse{Runs: 1}},
		{Key: "b", Val: RingsimResponse{Runs: 2}},
		{Key: "c", Val: RingsimResponse{Runs: 3}},
	}
	data := encodeCacheEntries(0, in)

	// Flip one payload byte inside the middle record.
	_, _, rest, err := store.DecodeRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	second := len(data) - len(rest)
	data[second+20] ^= 0xff
	out, _, skipped := decodeCacheEntries(data)
	if skipped != 1 || len(out) != 2 {
		t.Fatalf("got %d entries, %d skipped; want 2 entries, 1 skipped", len(out), skipped)
	}
	if out[0].Key != "a" || out[1].Key != "c" {
		t.Fatalf("wrong survivors: %q, %q", out[0].Key, out[1].Key)
	}

	// A record with an unknown kind (another build's cache) is skipped,
	// not loaded as something it is not.
	unknown := store.EncodeRecord(1, []byte(`{"kind":"mystery","key":"x","value":{}}`))
	out, _, skipped = decodeCacheEntries(unknown)
	if len(out) != 0 || skipped != 1 {
		t.Fatalf("unknown kind: %d entries, %d skipped", len(out), skipped)
	}

	out, _, skipped = decodeCacheEntries([]byte("this is not a cache file at all"))
	if len(out) != 0 || skipped == 0 {
		t.Fatalf("garbage: %d entries, %d skipped", len(out), skipped)
	}
}

// TestCachePersistRestart is the acceptance scenario: a second checkd
// booted against the first one's cache file serves a prior verdict as a
// cache hit without recomputing it.
func TestCachePersistRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	cfg := Config{Workers: 2, QueueDepth: 16, CacheEntries: 64,
		CachePath: path, CacheSnapshotInterval: time.Hour}

	clusterReq := ClusterRequest{Family: "dijkstra3", Procs: 5, Seed: 6, Steps: 2000,
		Schedule: "corrupt@40:node=1,val=0"}
	ringsimReq := RingsimRequest{Family: "dijkstra3", Procs: 5, Seed: 3, Runs: 3, Steps: 5000}

	svc := New(cfg)
	ts := httptest.NewServer(svc)
	var first ClusterResponse
	if resp, body := postJSON(t, ts.URL+"/v1/cluster", clusterReq); resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster: status %d: %s", resp.StatusCode, body)
	} else if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/ringsim", ringsimReq); resp.StatusCode != http.StatusOK {
		t.Fatalf("ringsim: status %d: %s", resp.StatusCode, body)
	}
	ts.Close()
	svc.Close() // graceful shutdown takes the final snapshot

	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("no cache file after shutdown: %v", err)
	}

	svc2 := New(cfg)
	defer svc2.Close()
	ts2 := httptest.NewServer(svc2)
	defer ts2.Close()

	snap := fetchMetrics(t, ts2.URL)
	if snap.Cache.Persist == nil || snap.Cache.Persist.Loaded != 2 {
		t.Fatalf("restart did not reload the cache: %+v", snap.Cache.Persist)
	}
	if snap.Cache.Persist.SkippedCorrupt != 0 {
		t.Fatalf("clean file reported skipped records: %+v", snap.Cache.Persist)
	}

	resp, body := postJSON(t, ts2.URL+"/v1/cluster", clusterReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var again ClusterResponse
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatalf("restarted server recomputed instead of serving the persisted verdict: %s", body)
	}
	if again.Steps != first.Steps || again.Moves != first.Moves || !again.Converged {
		t.Fatalf("persisted verdict diverges: %+v vs %+v", again, first)
	}
	if resp, body := postJSON(t, ts2.URL+"/v1/ringsim", ringsimReq); resp.StatusCode != http.StatusOK {
		t.Fatalf("ringsim replay: status %d: %s", resp.StatusCode, body)
	} else {
		var rs RingsimResponse
		if err := json.Unmarshal(body, &rs); err != nil || !rs.Cached {
			t.Fatalf("ringsim verdict not served from the persisted cache: %s", body)
		}
	}
}

// TestCachePersistCorruptFile: a deliberately corrupted cache file is
// skipped entry-by-entry — startup succeeds, the damage is counted in
// /metrics, the surviving entry still hits, and the lost one is simply
// recomputed.
func TestCachePersistCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	cfg := Config{Workers: 2, QueueDepth: 16, CacheEntries: 64,
		CachePath: path, CacheSnapshotInterval: time.Hour}

	clusterReq := ClusterRequest{Family: "dijkstra3", Procs: 5, Seed: 6, Steps: 2000,
		Schedule: "corrupt@40:node=1,val=0"}
	ringsimReq := RingsimRequest{Family: "dijkstra3", Procs: 5, Seed: 3, Runs: 3, Steps: 5000}

	svc := New(cfg)
	ts := httptest.NewServer(svc)
	postJSON(t, ts.URL+"/v1/cluster", clusterReq) // submitted first → least recent → first record
	postJSON(t, ts.URL+"/v1/ringsim", ringsimReq)
	ts.Close()
	svc.Close()

	// Corrupt one payload byte of the first record; the CRC catches it.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	svc2 := New(cfg) // must not fail
	defer svc2.Close()
	ts2 := httptest.NewServer(svc2)
	defer ts2.Close()

	snap := fetchMetrics(t, ts2.URL)
	if snap.Cache.Persist == nil || snap.Cache.Persist.Loaded != 1 || snap.Cache.Persist.SkippedCorrupt != 1 {
		t.Fatalf("want 1 loaded + 1 skipped, got %+v", snap.Cache.Persist)
	}

	// The record after the corrupt one survived resynchronization.
	resp, body := postJSON(t, ts2.URL+"/v1/ringsim", ringsimReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rs RingsimResponse
	if err := json.Unmarshal(body, &rs); err != nil || !rs.Cached {
		t.Fatalf("surviving entry not served as a hit: %s", body)
	}
	// The corrupted entry is a miss, recomputed without complaint.
	resp, body = postJSON(t, ts2.URL+"/v1/cluster", clusterReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var cl ClusterResponse
	if err := json.Unmarshal(body, &cl); err != nil || cl.Cached {
		t.Fatalf("corrupted entry should have been recomputed, not served: %s", body)
	}

	// A wholly garbage file also boots clean.
	garbage := filepath.Join(t.TempDir(), "garbage.snap")
	if err := os.WriteFile(garbage, []byte("zzzzzz not records"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg.CachePath = garbage
	svc3 := New(cfg)
	defer svc3.Close()
	ts3 := httptest.NewServer(svc3)
	defer ts3.Close()
	snap = fetchMetrics(t, ts3.URL)
	if snap.Cache.Persist == nil || snap.Cache.Persist.Loaded != 0 || snap.Cache.Persist.SkippedCorrupt == 0 {
		t.Fatalf("garbage file: want 0 loaded and >0 skipped, got %+v", snap.Cache.Persist)
	}
}

// TestCachePersistSnapshotInterval: the background loop writes the file
// without waiting for shutdown, so a crash loses at most one interval.
func TestCachePersistSnapshotInterval(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	svc := New(Config{Workers: 2, QueueDepth: 16, CacheEntries: 64,
		CachePath: path, CacheSnapshotInterval: 20 * time.Millisecond})
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	postJSON(t, ts.URL+"/v1/ringsim",
		RingsimRequest{Family: "dijkstra3", Procs: 5, Seed: 3, Runs: 3, Steps: 5000})
	waitFor(t, func() bool { return svc.persister.saves.Load() > 0 })
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	entries, _, skipped := decodeCacheEntries(data)
	if len(entries) != 1 || skipped != 0 {
		t.Fatalf("background snapshot holds %d entries (%d skipped), want 1 clean", len(entries), skipped)
	}
}

// TestServiceReadyz: readiness is not liveness. A fresh server is ready;
// one saturated past the queue high-water mark is not; one draining for
// shutdown is not — while /healthz keeps reporting the process alive.
func TestServiceReadyz(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 4, CacheEntries: 16})
	gate := make(chan struct{})
	svc.gate = gate
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	defer svc.Close()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	defer release()

	getStatus := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, m
	}

	if code, m := getStatus("/readyz"); code != http.StatusOK || m["status"] != "ready" {
		t.Fatalf("fresh server not ready: %d %v", code, m)
	}

	// Saturate: 1 in flight + 3 queued reaches the high-water mark (3 of 4).
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			postJSON(t, ts.URL+"/v1/ringsim",
				RingsimRequest{Family: "dijkstra3", Procs: 5, Seed: int64(i), Runs: 1, Steps: 1000, TimeoutMS: 30_000})
		}(i)
	}
	waitFor(t, func() bool { return svc.pool.depth.Load() >= 3 })
	if code, m := getStatus("/readyz"); code != http.StatusServiceUnavailable || m["status"] != "saturated" {
		t.Fatalf("saturated server still ready: %d %v", code, m)
	}
	if code, _ := getStatus("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz flapped on saturation: %d", code)
	}
	release()
	wg.Wait()

	waitFor(t, func() bool {
		code, _ := getStatus("/readyz")
		return code == http.StatusOK
	})

	// Draining: readiness drops immediately and permanently; liveness holds.
	svc.BeginDrain()
	if code, m := getStatus("/readyz"); code != http.StatusServiceUnavailable || m["status"] != "draining" {
		t.Fatalf("draining server still ready: %d %v", code, m)
	}
	if code, _ := getStatus("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz must stay 200 while draining: %d", code)
	}
}
