package service

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/store"
	"repro/internal/service/cache"
	"repro/internal/sim"
)

const kindCluster = "cluster"

// cluster admission bounds. Every process is a live goroutine and every
// step a scheduler round-trip, so the caps are far below ringsim's: a
// cluster request simulates one episode in real actor machinery, not a
// batch of array updates.
const (
	maxClusterProcs    = 512
	maxClusterSteps    = 1_000_000
	maxClusterSchedule = 256
)

// ClusterRequest is the body of POST /v1/cluster: one episode of the
// message-passing runtime (internal/cluster) over the deterministic
// in-proc transport, mirroring `ringsim cluster`'s flags.
type ClusterRequest struct {
	Family string `json:"family"`      // dijkstra3 | dijkstra4 | kstate | newthree
	Procs  int    `json:"procs"`       // number of processes (≥ 3)
	K      int    `json:"k,omitempty"` // kstate only; default procs
	Seed   int64  `json:"seed,omitempty"`
	// Faults is the number of registers corrupted in the initial
	// configuration (0 = start from the legitimate configuration).
	Faults int `json:"faults,omitempty"`
	// Steps is the scheduler step budget (default 10000).
	Steps int `json:"steps,omitempty"`
	// Schedule is a fault schedule in the cluster syntax, e.g.
	// "corrupt@40:node=1,val=0; drop@60:from=2,to=3,count=2".
	Schedule string `json:"schedule,omitempty"`
	// SnapshotEvery emits a tokens-over-time snapshot event every N
	// steps (0 = none).
	SnapshotEvery int `json:"snapshot_every,omitempty"`
	// RecordMoves adds one event per executed move to the stream.
	RecordMoves bool `json:"record_moves,omitempty"`
	// Persist gives the episode an in-memory snapshot store (never the
	// server's disk): registers persist every PersistEvery steps and
	// crash faults recover from validated snapshots.
	Persist bool `json:"persist,omitempty"`
	// PersistEvery is the snapshot interval in steps (≤ 0 = every step).
	PersistEvery int `json:"persist_every,omitempty"`
	// StorageFaultEvery faults every Nth snapshot write with a seeded
	// kind from StorageFaultKinds (0 = none; requires persist).
	StorageFaultEvery int `json:"storage_fault_every,omitempty"`
	// StorageFaultKinds is the storage-fault mix (torn, bitflip, stale,
	// missing); default all four.
	StorageFaultKinds []string `json:"storage_fault_kinds,omitempty"`
	TimeoutMS         int64    `json:"timeout_ms,omitempty"`
}

// ClusterResponse is the episode's result: the cluster.Result fields
// plus the derived start configuration and the cache envelope.
type ClusterResponse struct {
	Protocol       string                  `json:"protocol"`
	Transport      string                  `json:"transport"`
	Procs          int                     `json:"procs"`
	Seed           int64                   `json:"seed"`
	Start          []int                   `json:"start"`
	Steps          int                     `json:"steps"`
	Moves          int                     `json:"moves"`
	Converged      bool                    `json:"converged"`
	Final          []int                   `json:"final"`
	Stabilizations []cluster.Stabilization `json:"stabilizations,omitempty"`
	MovesPerNode   []int                   `json:"moves_per_node"`
	Links          []cluster.LinkStats     `json:"links,omitempty"`
	Events         []cluster.Event         `json:"events"`
	Storage        *store.Stats            `json:"storage,omitempty"`
	Cached         bool                    `json:"cached"`
	ElapsedUS      int64                   `json:"elapsed_us"`
}

func (r ClusterResponse) asCached(elapsed time.Duration) any {
	r.Cached = true
	r.ElapsedUS = elapsed.Microseconds()
	return r
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	s.recordRequest(kindCluster)
	var req ClusterRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeComputeError(w, err)
		return
	}
	if req.Steps == 0 {
		req.Steps = 10_000
	}
	if req.Procs < 3 || req.Procs > maxClusterProcs {
		s.writeComputeError(w, badRequest("procs must be in [3, %d], got %d", maxClusterProcs, req.Procs))
		return
	}
	if req.K == 0 {
		req.K = req.Procs
	}
	if req.K < 1 {
		s.writeComputeError(w, badRequest("k must be ≥ 1, got %d", req.K))
		return
	}
	if req.Steps < 1 || req.Steps > maxClusterSteps {
		s.writeComputeError(w, badRequest("steps must be in [1, %d], got %d", maxClusterSteps, req.Steps))
		return
	}
	if req.Faults < 0 || req.Faults > req.Procs {
		s.writeComputeError(w, badRequest("faults must be in [0, procs], got %d", req.Faults))
		return
	}
	if req.SnapshotEvery < 0 {
		s.writeComputeError(w, badRequest("snapshot_every must be ≥ 0, got %d", req.SnapshotEvery))
		return
	}
	if req.PersistEvery < 0 || req.StorageFaultEvery < 0 {
		s.writeComputeError(w, badRequest("persist_every and storage_fault_every must be ≥ 0"))
		return
	}
	if req.StorageFaultEvery > 0 && !req.Persist {
		s.writeComputeError(w, badRequest("storage_fault_every needs persist"))
		return
	}
	storageKinds, err := parseStorageFaultKinds(req.StorageFaultKinds)
	if err != nil {
		s.writeComputeError(w, badRequest("storage_fault_kinds: %v", err))
		return
	}

	var proto sim.Protocol
	switch req.Family {
	case "dijkstra3":
		proto = sim.NewDijkstra3(req.Procs)
	case "dijkstra4":
		proto = sim.NewDijkstra4(req.Procs)
	case "kstate":
		proto = sim.NewKState(req.Procs, req.K)
	case "newthree":
		proto = sim.NewNewThree(req.Procs)
	default:
		s.writeComputeError(w, badRequest("unknown family %q (want dijkstra3 | dijkstra4 | kstate | newthree)", req.Family))
		return
	}
	sched, err := cluster.ParseSchedule(req.Schedule)
	if err != nil {
		s.writeComputeError(w, badRequest("schedule: %v", err))
		return
	}
	if len(sched) > maxClusterSchedule {
		s.writeComputeError(w, badRequest("schedule has %d entries, above the limit of %d",
			len(sched), maxClusterSchedule))
		return
	}
	if err := cluster.ValidateSchedule(proto, sched); err != nil {
		s.writeComputeError(w, badRequest("schedule: %v", err))
		return
	}

	// An in-proc episode is a pure function of its parameters (the
	// stepped engine is deterministic), so the verdict cache applies.
	// The schedule is keyed in canonical form: parse-equivalent texts
	// share an entry.
	canon := make([]string, len(sched))
	for i, f := range sched {
		canon[i] = f.String()
	}
	key := cache.Key(kindCluster, req.Family,
		fmt.Sprint(req.Procs), fmt.Sprint(req.K), fmt.Sprint(req.Seed),
		fmt.Sprint(req.Faults), fmt.Sprint(req.Steps),
		strings.Join(canon, ";"),
		fmt.Sprint(req.SnapshotEvery), fmt.Sprint(req.RecordMoves),
		fmt.Sprint(req.Persist), fmt.Sprint(req.PersistEvery),
		fmt.Sprint(req.StorageFaultEvery), fmt.Sprint(storageKinds))
	if s.serveFromCache(w, key, started) {
		return
	}
	s.execute(w, r, kindCluster, key, req.TimeoutMS, func(ctx context.Context) (any, error) {
		legit, err := sim.LegitimateConfig(proto)
		if err != nil {
			return nil, badRequest("family: %v", err)
		}
		start := sim.Corrupt(proto, legit, req.Faults, rand.New(rand.NewSource(req.Seed)))
		// Persistence is served from a per-request in-memory store: the
		// service never writes its own disk on behalf of a request.
		var st *store.Store
		if req.Persist {
			var sfs store.FS = store.NewMemFS()
			if req.StorageFaultEvery > 0 {
				sfs = store.NewInjector(sfs, req.Seed, store.Plan{Every: req.StorageFaultEvery, Kinds: storageKinds})
			}
			st = store.New(sfs)
		}
		res, err := cluster.Run(ctx, cluster.Options{
			Proto:          proto,
			Seed:           req.Seed,
			MaxSteps:       req.Steps,
			Schedule:       sched,
			SnapshotEvery:  req.SnapshotEvery,
			RecordMoves:    req.RecordMoves,
			StopWhenStable: true,
			Store:          st,
			PersistEvery:   req.PersistEvery,
		}, start)
		if err != nil {
			return nil, err
		}
		return ClusterResponse{
			Protocol:       res.Protocol,
			Transport:      res.Transport,
			Procs:          res.Procs,
			Seed:           res.Seed,
			Start:          start,
			Steps:          res.Steps,
			Moves:          res.Moves,
			Converged:      res.Converged,
			Final:          res.Final,
			Stabilizations: res.Stabilizations,
			MovesPerNode:   res.MovesPerNode,
			Links:          res.Links,
			Events:         res.Events,
			Storage:        res.Storage,
			ElapsedUS:      time.Since(started).Microseconds(),
		}, nil
	})
}

// parseStorageFaultKinds maps the request's storage-fault mix onto the
// store's kinds, defaulting to all four.
func parseStorageFaultKinds(kinds []string) ([]store.FaultKind, error) {
	if len(kinds) == 0 {
		return []store.FaultKind{store.FaultTorn, store.FaultBitFlip, store.FaultStale, store.FaultMissing}, nil
	}
	return store.ParseFaultKinds(kinds)
}
