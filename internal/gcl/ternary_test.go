package gcl

import (
	"strings"
	"testing"

	"repro/internal/system"
)

func TestTernaryParseAndEval(t *testing.T) {
	c, err := Compile("t", `
var x : 0..4;
init x == 0;
action a: x < 4 -> x := (x == 2) ? 0 : x + 1;
`)
	if err != nil {
		t.Fatal(err)
	}
	sys := c.System
	// 0→1→2→0 cycle; 3→4 terminal branch.
	if !sys.HasTransition(0, 1) || !sys.HasTransition(1, 2) || !sys.HasTransition(2, 0) {
		t.Fatal("ternary branch wrong")
	}
	if !sys.HasTransition(3, 4) || !sys.Terminal(4) {
		t.Fatal("else branch wrong")
	}
}

func TestTernaryRightAssociative(t *testing.T) {
	prog, err := Parse(`
var x : 0..9;
action a: true -> x := x == 0 ? 1 : x == 1 ? 2 : 3;
`)
	if err != nil {
		t.Fatal(err)
	}
	outer, isCond := prog.Actions[0].Assigns[0].Expr.(*Cond)
	if !isCond {
		t.Fatalf("not a conditional: %T", prog.Actions[0].Assigns[0].Expr)
	}
	if _, isNested := outer.Y.(*Cond); !isNested {
		t.Fatalf("else arm should be the nested conditional, got %T", outer.Y)
	}
}

func TestTernaryTypeErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"var x : 0..2;\naction a: true -> x := x ? 0 : 1;", "must be boolean"},
		{"var x : 0..2;\nvar b : bool;\naction a: true -> x := b ? 0 : b;", "same type"},
	}
	for _, tc := range cases {
		prog, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.src, err)
		}
		err = Check(prog)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Check(%q) = %v, want %q", tc.src, err, tc.want)
		}
	}
}

func TestTernaryMissingColon(t *testing.T) {
	_, err := Parse("var x : 0..2;\naction a: true -> x := x == 0 ? 1;")
	if err == nil || !strings.Contains(err.Error(), "':'") {
		t.Fatalf("err = %v", err)
	}
}

func TestTernaryPrintRoundTrip(t *testing.T) {
	src := `
var x : 0..4;
action a: x < 4 -> x := (x == 2) ? 0 : ((x == 3) ? 1 : x + 1);
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := prog.String()
	prog2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
	if prog2.String() != printed {
		t.Fatal("print not idempotent")
	}
}

func TestTernarySimplify(t *testing.T) {
	c, err := Compile("t", `
var x : 0..4;
action a: x < 4 -> x := true ? x + 1 : 0;
action b: x > 0 -> x := (x == x) ? x - 1 : x - 1;
`)
	if err != nil {
		t.Fatal(err)
	}
	opt, cert, _, err := OptimizeAndCertify(c)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Level != CertIdentical {
		t.Fatalf("certificate = %s", cert)
	}
	printed := opt.Program.String()
	if strings.Contains(printed, "?") {
		t.Fatalf("conditionals not simplified away:\n%s", printed)
	}
}

func TestTernaryShortCircuit(t *testing.T) {
	// The unselected arm must not be evaluated: division by zero in the
	// dead arm is harmless.
	c, err := Compile("t", `
var x : 0..2;
action a: true -> x := (x == 0) ? 1 : (2 / x);
`)
	if err != nil {
		t.Fatal(err)
	}
	sp := c.Space
	if !c.System.HasTransition(sp.Encode(system.Vals{0}), sp.Encode(system.Vals{1})) {
		t.Fatal("then branch wrong")
	}
	if !c.System.HasTransition(sp.Encode(system.Vals{1}), sp.Encode(system.Vals{2})) {
		t.Fatal("else branch wrong")
	}
}
