package gcl

import (
	"strings"
	"testing"
)

// TestTypedASTAccessors checks the Type/Position/String surface after a
// full parse-and-check pass.
func TestTypedASTAccessors(t *testing.T) {
	prog, err := Parse(`
var b : bool;
var x : 0..4;
action a: !b && -x + 2 * x >= 0 || x == 1 -> b := true; x := x / 2;
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(prog); err != nil {
		t.Fatal(err)
	}
	guard := prog.Actions[0].Guard
	if guard.Type() != TypeBool {
		t.Fatalf("guard type = %v", guard.Type())
	}
	or := guard.(*Binary)
	if or.Op != KindOr || or.Type() != TypeBool {
		t.Fatalf("top = %v", or)
	}
	and := or.X.(*Binary)
	not := and.X.(*Unary)
	if not.Type() != TypeBool || not.X.(*Ident).Type() != TypeBool {
		t.Fatal("unary/ident types wrong")
	}
	cmp := and.Y.(*Binary)
	if cmp.Type() != TypeBool {
		t.Fatal("comparison type wrong")
	}
	sum := cmp.X.(*Binary)
	if sum.Type() != TypeInt {
		t.Fatal("sum type wrong")
	}
	neg := sum.X.(*Unary)
	if neg.Op != KindMinus || neg.Type() != TypeInt {
		t.Fatal("negation wrong")
	}
	if guard.Position().Line != 4 {
		t.Fatalf("position = %v", guard.Position())
	}
	// Literal node accessors.
	lit := prog.Actions[0].Assigns[1].Expr.(*Binary).Y.(*IntLit)
	if lit.Type() != TypeInt || lit.Position().Line != 4 {
		t.Fatalf("literal = %+v", lit)
	}
	boolLit := prog.Actions[0].Assigns[0].Expr.(*BoolLit)
	if boolLit.Type() != TypeBool || boolLit.String() != "true" {
		t.Fatalf("bool literal = %+v", boolLit)
	}
}

func TestExprStringRendering(t *testing.T) {
	prog, err := Parse(`
var x : 0..4;
action a: !(x == 0) && x < 4 -> x := (x + 1) * 2 - x / x % 3;
`)
	if err != nil {
		t.Fatal(err)
	}
	s := prog.String()
	// The printer re-parenthesizes explicitly; verify a round trip and
	// spot-check operator spellings.
	for _, frag := range []string{"!", "==", "&&", "<", ":=", "+", "*", "-", "/", "%"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("printed program missing %q:\n%s", frag, s)
		}
	}
	prog2, err := Parse(s)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, s)
	}
	if prog2.String() != s {
		t.Fatal("printer not idempotent")
	}
}

func TestTypeString(t *testing.T) {
	if TypeInt.String() != "int" || TypeBool.String() != "bool" || TypeInvalid.String() != "invalid" {
		t.Fatal("type names wrong")
	}
}

func TestVarDeclCard(t *testing.T) {
	if (VarDecl{IsBool: true}).Card() != 2 {
		t.Fatal("bool card")
	}
	if (VarDecl{Lo: -1, Hi: 1}).Card() != 3 {
		t.Fatal("range card")
	}
}

func TestFalseLiteralString(t *testing.T) {
	prog, err := Parse("var b : bool;\naction a: b -> b := false;")
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.Actions[0].Assigns[0].Expr.String(); got != "false" {
		t.Fatalf("String = %q", got)
	}
}

func TestUnaryMinusPrinting(t *testing.T) {
	prog, err := Parse("var x : -3..3;\naction a: x > -2 -> x := -x;")
	if err != nil {
		t.Fatal(err)
	}
	s := prog.String()
	if !strings.Contains(s, "-x") && !strings.Contains(s, "-(x)") {
		t.Fatalf("printed = %q", s)
	}
	if !strings.Contains(s, "var x : -3..3;") {
		t.Fatalf("negative range lost: %q", s)
	}
}
