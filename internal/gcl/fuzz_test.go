package gcl

import (
	"strings"
	"testing"
)

// FuzzParse asserts the lexer/parser/checker pipeline never panics and
// that accepted programs survive a print→reparse round trip.
func FuzzParse(f *testing.F) {
	f.Add("var x : 0..2;\naction a: x < 2 -> x := x + 1;")
	f.Add(dijkstra3Src)
	f.Add("var b : bool;\ninit !b;\naction t: b || !b -> b := false;")
	f.Add("var x : -5..5;\naction n: -x == 5 -> x := 0;")
	f.Add("var x : 0..1; action broken")
	f.Add("/* unterminated")
	f.Add("🤖")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := Check(prog); err != nil {
			return
		}
		printed := prog.String()
		prog2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed program does not reparse: %v\n%s", err, printed)
		}
		if got := prog2.String(); got != printed {
			t.Fatalf("print not idempotent:\n%s\nvs\n%s", printed, got)
		}
	})
}

// FuzzCompile asserts that compilation of small-domain programs never
// panics: either a compiled automaton or an error.
func FuzzCompile(f *testing.F) {
	f.Add("var x : 0..2;\naction a: true -> x := (x + 1) % 3;")
	f.Add("var x : 0..2;\naction a: true -> x := x + 1;") // domain overflow
	f.Add("var x : 0..2;\naction a: 1 / x == 1 -> x := 0;")
	f.Fuzz(func(t *testing.T, src string) {
		// Guard against fuzz inputs that declare astronomically large
		// domains: compilation cost is proportional to the state space.
		if strings.Contains(src, "..") && len(src) < 4096 {
			prog, err := Parse(src)
			if err != nil {
				return
			}
			space := 1
			for _, v := range prog.Vars {
				space *= v.Card()
				if space > 1<<16 {
					return
				}
			}
			_, _ = CompileProgram("fuzz", prog)
		}
	})
}
