package gcl

import (
	"strings"
	"testing"
)

func kinds(t *testing.T, src string) []TokenKind {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex(%q): %v", src, err)
	}
	out := make([]TokenKind, len(toks))
	for i, tok := range toks {
		out[i] = tok.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	got := kinds(t, "var x : 0..2;")
	want := []TokenKind{KindVar, KindIdent, KindColon, KindInt, KindDotDot, KindInt, KindSemicolon, KindEOF}
	if len(got) != len(want) {
		t.Fatalf("kinds = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", got, want)
		}
	}
}

func TestLexOperators(t *testing.T) {
	got := kinds(t, ":= == != <= >= < > && || ! -> + - * / % ( ) , :")
	want := []TokenKind{KindAssign, KindEq, KindNeq, KindLe, KindGe, KindLt, KindGt,
		KindAnd, KindOr, KindNot, KindArrow, KindPlus, KindMinus, KindStar,
		KindSlash, KindPercent, KindLParen, KindRParen, KindComma, KindColon, KindEOF}
	if len(got) != len(want) {
		t.Fatalf("kinds = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kinds[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexKeywordsAndIdents(t *testing.T) {
	toks, err := Lex("var bool init action true false varx c0 _tmp")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{KindVar, KindBool, KindInit, KindAction, KindTrue, KindFalse,
		KindIdent, KindIdent, KindIdent, KindEOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Fatalf("tok[%d] = %v, want %v", i, toks[i], k)
		}
	}
	if toks[6].Text != "varx" || toks[7].Text != "c0" || toks[8].Text != "_tmp" {
		t.Fatalf("ident texts wrong: %v", toks)
	}
}

func TestLexComments(t *testing.T) {
	src := `
// line comment -> ignored
var x : bool; /* block
comment */ init x;
`
	got := kinds(t, src)
	want := []TokenKind{KindVar, KindIdent, KindColon, KindBool, KindSemicolon,
		KindInit, KindIdent, KindSemicolon, KindEOF}
	if len(got) != len(want) {
		t.Fatalf("kinds = %v", got)
	}
}

func TestLexUnterminatedBlockComment(t *testing.T) {
	_, err := Lex("var x /* oops")
	if err == nil || !strings.Contains(err.Error(), "unterminated") {
		t.Fatalf("err = %v", err)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("var x : bool;\naction a: x -> x := false;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) {
		t.Fatalf("pos of 'var' = %v", toks[0].Pos)
	}
	// "action" starts line 2, col 1.
	var actionTok Token
	for _, tok := range toks {
		if tok.Kind == KindAction {
			actionTok = tok
		}
	}
	if actionTok.Pos != (Pos{2, 1}) {
		t.Fatalf("pos of 'action' = %v", actionTok.Pos)
	}
}

func TestLexBadCharacter(t *testing.T) {
	_, err := Lex("var x : bool; @")
	if err == nil || !strings.Contains(err.Error(), "unexpected character") {
		t.Fatalf("err = %v", err)
	}
}

func TestLexMalformedNumber(t *testing.T) {
	_, err := Lex("12abc")
	if err == nil || !strings.Contains(err.Error(), "malformed number") {
		t.Fatalf("err = %v", err)
	}
}

func TestLexSingleAmpersandRejected(t *testing.T) {
	_, err := Lex("x & y")
	if err == nil {
		t.Fatal("single & accepted")
	}
}

func TestTokenString(t *testing.T) {
	toks, err := Lex("x 42 :=")
	if err != nil {
		t.Fatal(err)
	}
	if s := toks[0].String(); !strings.Contains(s, `"x"`) {
		t.Fatalf("String = %q", s)
	}
	if s := toks[2].String(); s != "':='" {
		t.Fatalf("String = %q", s)
	}
}
