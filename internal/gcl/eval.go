package gcl

import (
	"fmt"

	"repro/internal/system"
)

// EvalError reports a runtime evaluation failure (division by zero, or an
// assignment leaving a variable's domain) together with the state in which
// it occurred.
type EvalError struct {
	Pos   Pos
	Msg   string
	State string
}

// Error implements error.
func (e *EvalError) Error() string {
	if e.State != "" {
		return fmt.Sprintf("%s: %s (in state %s)", e.Pos, e.Msg, e.State)
	}
	return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
}

// Eval evaluates a checked expression in the environment env, which holds
// each variable's 0-based encoded value (booleans as 0/1; range variables
// offset by their lower bound). Integer results are returned in source
// units (i.e. with range offsets applied); boolean results as 0/1.
func Eval(p *Program, e Expr, env system.Vals) (int, error) {
	switch e := e.(type) {
	case *IntLit:
		return e.Value, nil
	case *BoolLit:
		if e.Value {
			return 1, nil
		}
		return 0, nil
	case *Ident:
		v := p.Vars[e.Index]
		if v.IsBool {
			return env[e.Index], nil
		}
		return env[e.Index] + v.Lo, nil
	case *Unary:
		x, err := Eval(p, e.X, env)
		if err != nil {
			return 0, err
		}
		if e.Op == KindNot {
			return 1 - x, nil
		}
		return -x, nil
	case *Cond:
		c, err := Eval(p, e.C, env)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return Eval(p, e.X, env)
		}
		return Eval(p, e.Y, env)
	case *Binary:
		x, err := Eval(p, e.X, env)
		if err != nil {
			return 0, err
		}
		// Short-circuit logic.
		switch e.Op {
		case KindAnd:
			if x == 0 {
				return 0, nil
			}
			return Eval(p, e.Y, env)
		case KindOr:
			if x != 0 {
				return 1, nil
			}
			return Eval(p, e.Y, env)
		}
		y, err := Eval(p, e.Y, env)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case KindPlus:
			return x + y, nil
		case KindMinus:
			return x - y, nil
		case KindStar:
			return x * y, nil
		case KindSlash:
			if y == 0 {
				return 0, &EvalError{Pos: e.Pos, Msg: "division by zero"}
			}
			return floorDiv(x, y), nil
		case KindPercent:
			if y == 0 {
				return 0, &EvalError{Pos: e.Pos, Msg: "modulo by zero"}
			}
			return floorMod(x, y), nil
		case KindEq:
			return b2i(x == y), nil
		case KindNeq:
			return b2i(x != y), nil
		case KindLt:
			return b2i(x < y), nil
		case KindLe:
			return b2i(x <= y), nil
		case KindGt:
			return b2i(x > y), nil
		case KindGe:
			return b2i(x >= y), nil
		}
		return 0, &EvalError{Pos: e.Pos, Msg: fmt.Sprintf("unknown operator %s", e.Op)}
	default:
		return 0, &EvalError{Pos: e.Position(), Msg: "unknown expression node"}
	}
}

// EvalBool evaluates a boolean expression.
func EvalBool(p *Program, e Expr, env system.Vals) (bool, error) {
	v, err := Eval(p, e, env)
	return v != 0, err
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// floorDiv and floorMod implement mathematical (floored) division so the
// ⊕/⊖ modulo-K arithmetic of the paper behaves correctly on negative
// intermediates: (-1) % 3 == 2.
func floorDiv(x, y int) int {
	q := x / y
	if (x%y != 0) && ((x < 0) != (y < 0)) {
		q--
	}
	return q
}

func floorMod(x, y int) int {
	m := x % y
	if m != 0 && ((x < 0) != (y < 0)) {
		m += y
	}
	return m
}
