package gcl

import (
	"fmt"

	"repro/internal/system"
)

// Compiled is a type-checked program together with its state space and
// enumerated automaton.
type Compiled struct {
	Program *Program
	Space   *system.Space
	System  *system.System
}

// Compile parses, checks, and enumerates a GCL source text into an
// automaton named name.
func Compile(name, src string) (*Compiled, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, fmt.Errorf("gcl: parsing %s: %w", name, err)
	}
	return CompileProgram(name, prog)
}

// CompileProgram checks and enumerates an already-parsed program.
func CompileProgram(name string, prog *Program) (*Compiled, error) {
	if err := Check(prog); err != nil {
		return nil, fmt.Errorf("gcl: checking %s: %w", name, err)
	}
	sp := SpaceOf(prog)
	b := system.NewSpaceBuilder(name, sp)

	env := make(system.Vals, len(prog.Vars))
	next := make(system.Vals, len(prog.Vars))
	for s := 0; s < sp.Size(); s++ {
		env = sp.Decode(s, env)
		if prog.Init == nil {
			b.AddInit(s)
		} else {
			isInit, err := EvalBool(prog, prog.Init, env)
			if err != nil {
				return nil, evalFailure(sp, s, err)
			}
			if isInit {
				b.AddInit(s)
			}
		}
		for ai := range prog.Actions {
			a := &prog.Actions[ai]
			enabled, err := EvalBool(prog, a.Guard, env)
			if err != nil {
				return nil, evalFailure(sp, s, err)
			}
			if !enabled {
				continue
			}
			copy(next, env)
			for _, as := range a.Assigns {
				v, err := Eval(prog, as.Expr, env) // pre-state: simultaneous semantics
				if err != nil {
					return nil, evalFailure(sp, s, err)
				}
				decl := prog.Vars[varIndex(prog, as.Name)]
				enc, err := encodeValue(decl, v)
				if err != nil {
					return nil, &EvalError{Pos: as.Pos,
						Msg:   fmt.Sprintf("action %q: %v", a.Name, err),
						State: sp.StateString(s)}
				}
				next[varIndex(prog, as.Name)] = enc
			}
			b.AddTransition(s, sp.Encode(next))
		}
	}
	return &Compiled{Program: prog, Space: sp, System: b.Build()}, nil
}

// SpaceOf builds the structured state space of a program's declarations.
func SpaceOf(prog *Program) *system.Space {
	vars := make([]system.Var, len(prog.Vars))
	for i, v := range prog.Vars {
		if v.IsBool {
			vars[i] = system.Bool(v.Name)
		} else if v.Lo == 0 {
			vars[i] = system.Int(v.Name, v.Card())
		} else {
			lo := v.Lo
			vars[i] = system.Var{Name: v.Name, Card: v.Card(), Fmt: func(x int) string {
				return fmt.Sprintf("%d", x+lo)
			}}
		}
	}
	return system.NewSpace(vars...)
}

func varIndex(prog *Program, name string) int {
	for i, v := range prog.Vars {
		if v.Name == name {
			return i
		}
	}
	// Unreachable after Check.
	panic(fmt.Sprintf("gcl: unresolved variable %q", name))
}

func encodeValue(decl VarDecl, v int) (int, error) {
	if decl.IsBool {
		if v != 0 && v != 1 {
			return 0, fmt.Errorf("boolean %q assigned %d", decl.Name, v)
		}
		return v, nil
	}
	if v < decl.Lo || v > decl.Hi {
		return 0, fmt.Errorf("variable %q assigned %d outside %d..%d", decl.Name, v, decl.Lo, decl.Hi)
	}
	return v - decl.Lo, nil
}

func evalFailure(sp *system.Space, s int, err error) error {
	if ee, okk := err.(*EvalError); okk && ee.State == "" {
		ee.State = sp.StateString(s)
		return ee
	}
	return err
}
