package gcl

import "fmt"

// CheckError reports a semantic (type or resolution) failure.
type CheckError struct {
	Pos Pos
	Msg string
}

// Error implements error.
func (e *CheckError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Check resolves identifiers against the program's declarations and infers
// expression types, rejecting type errors: guards and the init predicate
// must be boolean; assignment right-hand sides must match the target
// variable's type; arithmetic applies to ints, logic to bools, and
// (in)equality to same-typed operands.
func Check(p *Program) error {
	byName := make(map[string]int, len(p.Vars))
	for i, v := range p.Vars {
		byName[v.Name] = i
	}
	c := &checker{prog: p, byName: byName}

	if p.Init != nil {
		t, err := c.check(p.Init)
		if err != nil {
			return err
		}
		if t != TypeBool {
			return &CheckError{Pos: p.Init.Position(), Msg: "init predicate must be boolean"}
		}
	}
	for ai := range p.Actions {
		a := &p.Actions[ai]
		t, err := c.check(a.Guard)
		if err != nil {
			return err
		}
		if t != TypeBool {
			return &CheckError{Pos: a.Guard.Position(),
				Msg: fmt.Sprintf("guard of action %q must be boolean, got %s", a.Name, t)}
		}
		if len(a.Assigns) == 0 {
			return &CheckError{Pos: a.Pos, Msg: fmt.Sprintf("action %q has no assignments", a.Name)}
		}
		targets := make(map[string]bool, len(a.Assigns))
		for _, as := range a.Assigns {
			vi, found := byName[as.Name]
			if !found {
				return &CheckError{Pos: as.Pos, Msg: fmt.Sprintf("assignment to undeclared variable %q", as.Name)}
			}
			if targets[as.Name] {
				return &CheckError{Pos: as.Pos,
					Msg: fmt.Sprintf("action %q assigns %q twice; simultaneous assignments must have distinct targets", a.Name, as.Name)}
			}
			targets[as.Name] = true
			t, err := c.check(as.Expr)
			if err != nil {
				return err
			}
			want := TypeInt
			if p.Vars[vi].IsBool {
				want = TypeBool
			}
			if t != want {
				return &CheckError{Pos: as.Pos,
					Msg: fmt.Sprintf("cannot assign %s expression to %s variable %q", t, want, as.Name)}
			}
		}
	}
	return nil
}

type checker struct {
	prog   *Program
	byName map[string]int
}

func (c *checker) check(e Expr) (Type, error) {
	switch e := e.(type) {
	case *IntLit:
		return TypeInt, nil
	case *BoolLit:
		return TypeBool, nil
	case *Ident:
		vi, found := c.byName[e.Name]
		if !found {
			return TypeInvalid, &CheckError{Pos: e.Pos, Msg: fmt.Sprintf("undeclared variable %q", e.Name)}
		}
		e.Index = vi
		if c.prog.Vars[vi].IsBool {
			e.typ = TypeBool
		} else {
			e.typ = TypeInt
		}
		return e.typ, nil
	case *Unary:
		t, err := c.check(e.X)
		if err != nil {
			return TypeInvalid, err
		}
		switch e.Op {
		case KindNot:
			if t != TypeBool {
				return TypeInvalid, &CheckError{Pos: e.Pos, Msg: fmt.Sprintf("operator ! requires bool, got %s", t)}
			}
			e.typ = TypeBool
		case KindMinus:
			if t != TypeInt {
				return TypeInvalid, &CheckError{Pos: e.Pos, Msg: fmt.Sprintf("unary - requires int, got %s", t)}
			}
			e.typ = TypeInt
		default:
			return TypeInvalid, &CheckError{Pos: e.Pos, Msg: fmt.Sprintf("unknown unary operator %s", e.Op)}
		}
		return e.typ, nil
	case *Cond:
		tc, err := c.check(e.C)
		if err != nil {
			return TypeInvalid, err
		}
		if tc != TypeBool {
			return TypeInvalid, &CheckError{Pos: e.Pos, Msg: "ternary condition must be boolean"}
		}
		tx, err := c.check(e.X)
		if err != nil {
			return TypeInvalid, err
		}
		ty, err := c.check(e.Y)
		if err != nil {
			return TypeInvalid, err
		}
		if tx != ty {
			return TypeInvalid, &CheckError{Pos: e.Pos,
				Msg: fmt.Sprintf("ternary arms must have the same type, got %s and %s", tx, ty)}
		}
		e.typ = tx
		return e.typ, nil
	case *Binary:
		tx, err := c.check(e.X)
		if err != nil {
			return TypeInvalid, err
		}
		ty, err := c.check(e.Y)
		if err != nil {
			return TypeInvalid, err
		}
		switch e.Op {
		case KindPlus, KindMinus, KindStar, KindSlash, KindPercent:
			if tx != TypeInt || ty != TypeInt {
				return TypeInvalid, &CheckError{Pos: e.Pos,
					Msg: fmt.Sprintf("operator %s requires int operands, got %s and %s", opText(e.Op), tx, ty)}
			}
			e.typ = TypeInt
		case KindLt, KindLe, KindGt, KindGe:
			if tx != TypeInt || ty != TypeInt {
				return TypeInvalid, &CheckError{Pos: e.Pos,
					Msg: fmt.Sprintf("operator %s requires int operands, got %s and %s", opText(e.Op), tx, ty)}
			}
			e.typ = TypeBool
		case KindEq, KindNeq:
			if tx != ty {
				return TypeInvalid, &CheckError{Pos: e.Pos,
					Msg: fmt.Sprintf("operator %s requires same-typed operands, got %s and %s", opText(e.Op), tx, ty)}
			}
			e.typ = TypeBool
		case KindAnd, KindOr:
			if tx != TypeBool || ty != TypeBool {
				return TypeInvalid, &CheckError{Pos: e.Pos,
					Msg: fmt.Sprintf("operator %s requires bool operands, got %s and %s", opText(e.Op), tx, ty)}
			}
			e.typ = TypeBool
		default:
			return TypeInvalid, &CheckError{Pos: e.Pos, Msg: fmt.Sprintf("unknown binary operator %s", e.Op)}
		}
		return e.typ, nil
	default:
		return TypeInvalid, &CheckError{Pos: e.Position(), Msg: "unknown expression node"}
	}
}
