package gcl

import (
	"fmt"
	"strings"
	"unicode"
)

// SyntaxError reports a lexical or parse failure with its source position.
type SyntaxError struct {
	Pos Pos
	Msg string
}

// Error implements error.
func (e *SyntaxError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// lexer scans GCL source into tokens.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *lexer) advance() byte {
	ch := l.src[l.off]
	l.off++
	if ch == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return ch
}

func (l *lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		ch := l.peek()
		switch {
		case ch == ' ' || ch == '\t' || ch == '\r' || ch == '\n':
			l.advance()
		case ch == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case ch == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &SyntaxError{Pos: start, Msg: "unterminated block comment"}
			}
		default:
			return nil
		}
	}
	return nil
}

// next scans one token.
func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	start := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: KindEOF, Pos: start}, nil
	}
	ch := l.peek()

	switch {
	case isIdentStart(ch):
		var b strings.Builder
		for l.off < len(l.src) && isIdentPart(l.peek()) {
			b.WriteByte(l.advance())
		}
		text := b.String()
		if kw, okk := keywords[text]; okk {
			return Token{Kind: kw, Text: text, Pos: start}, nil
		}
		return Token{Kind: KindIdent, Text: text, Pos: start}, nil

	case ch >= '0' && ch <= '9':
		var b strings.Builder
		for l.off < len(l.src) && l.peek() >= '0' && l.peek() <= '9' {
			b.WriteByte(l.advance())
		}
		if l.off < len(l.src) && isIdentStart(l.peek()) {
			return Token{}, &SyntaxError{Pos: start, Msg: "malformed number"}
		}
		return Token{Kind: KindInt, Text: b.String(), Pos: start}, nil
	}

	two := func(kind TokenKind, text string) (Token, error) {
		l.advance()
		l.advance()
		return Token{Kind: kind, Text: text, Pos: start}, nil
	}
	one := func(kind TokenKind, text string) (Token, error) {
		l.advance()
		return Token{Kind: kind, Text: text, Pos: start}, nil
	}

	switch ch {
	case ':':
		if l.peek2() == '=' {
			return two(KindAssign, ":=")
		}
		return one(KindColon, ":")
	case ';':
		return one(KindSemicolon, ";")
	case ',':
		return one(KindComma, ",")
	case '.':
		if l.peek2() == '.' {
			return two(KindDotDot, "..")
		}
	case '-':
		if l.peek2() == '>' {
			return two(KindArrow, "->")
		}
		return one(KindMinus, "-")
	case '(':
		return one(KindLParen, "(")
	case ')':
		return one(KindRParen, ")")
	case '+':
		return one(KindPlus, "+")
	case '*':
		return one(KindStar, "*")
	case '/':
		return one(KindSlash, "/")
	case '%':
		return one(KindPercent, "%")
	case '=':
		if l.peek2() == '=' {
			return two(KindEq, "==")
		}
	case '!':
		if l.peek2() == '=' {
			return two(KindNeq, "!=")
		}
		return one(KindNot, "!")
	case '?':
		return one(KindQuestion, "?")
	case '<':
		if l.peek2() == '=' {
			return two(KindLe, "<=")
		}
		return one(KindLt, "<")
	case '>':
		if l.peek2() == '=' {
			return two(KindGe, ">=")
		}
		return one(KindGt, ">")
	case '&':
		if l.peek2() == '&' {
			return two(KindAnd, "&&")
		}
	case '|':
		if l.peek2() == '|' {
			return two(KindOr, "||")
		}
	}
	return Token{}, &SyntaxError{Pos: start, Msg: fmt.Sprintf("unexpected character %q", rune(ch))}
}

// Lex scans the whole input, returning the token stream ending in EOF.
func Lex(src string) ([]Token, error) {
	l := newLexer(src)
	var toks []Token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == KindEOF {
			return toks, nil
		}
	}
}

func isIdentStart(ch byte) bool {
	return ch == '_' || unicode.IsLetter(rune(ch))
}

func isIdentPart(ch byte) bool {
	return isIdentStart(ch) || (ch >= '0' && ch <= '9')
}
