package gcl

import (
	"strings"
	"testing"

	"repro/internal/system"
)

func compileT(t *testing.T, src string) *Compiled {
	t.Helper()
	c, err := Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestOptimizeConstantFolding(t *testing.T) {
	c := compileT(t, `
var x : 0..9;
init x == 2 + 3 - 5;
action a: x < 2 * 2 + 1 -> x := x + (1 * 1);
action dead: 1 > 2 -> x := 0;
`)
	opt, cert, notes, err := OptimizeAndCertify(c)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Level != CertIdentical {
		t.Fatalf("certificate = %s", cert)
	}
	printed := opt.Program.String()
	if strings.Contains(printed, "2 + 3") || strings.Contains(printed, "1 * 1") {
		t.Fatalf("constants not folded:\n%s", printed)
	}
	if strings.Contains(printed, "dead") {
		t.Fatalf("unsatisfiable action survived:\n%s", printed)
	}
	if len(notes) == 0 {
		t.Fatal("no rewrite notes")
	}
	if !system.TransitionsEqual(opt.System, c.System) {
		t.Fatal("automaton changed")
	}
}

func TestOptimizeBooleanIdentities(t *testing.T) {
	c := compileT(t, `
var b : bool;
action a: (b && true) || false -> b := false;
action n: !(!b) -> b := false;
`)
	opt, cert, _, err := OptimizeAndCertify(c)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Level != CertIdentical {
		t.Fatalf("certificate = %s", cert)
	}
	printed := opt.Program.String()
	if strings.Contains(printed, "true") || strings.Contains(printed, "false ||") || strings.Contains(printed, "!(!") {
		t.Fatalf("identities not applied:\n%s", printed)
	}
}

func TestOptimizeSelfComparisonIsThePaperExample(t *testing.T) {
	// The introduction's `while (x == x)`: a pure self-comparison is a
	// tautology at the source level — which is exactly why its naive
	// two-read compilation is the fault-intolerance culprit.
	c := compileT(t, `
var x : 0..3;
init x == 0;
action loop: x == x -> x := 0;
`)
	opt, cert, _, err := OptimizeAndCertify(c)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Level != CertIdentical {
		t.Fatalf("certificate = %s", cert)
	}
	if got := opt.Program.Actions[0].Guard.String(); got != "true" {
		t.Fatalf("guard = %q, want folded tautology", got)
	}
}

func TestOptimizeDropsTauActions(t *testing.T) {
	c := compileT(t, `
var x : 0..2;
init x == 0;
action tau: x == 1 -> x := x;
action real: x < 2 -> x := x + 1;
`)
	opt, cert, notes, err := OptimizeAndCertify(c)
	if err != nil {
		t.Fatal(err)
	}
	// Removing the τ self-loop changes the automaton but is certified at
	// the τ-equivalence level.
	if cert.Level != CertTauEquivalent {
		t.Fatalf("certificate = %s", cert)
	}
	if len(opt.Program.Actions) != 1 || opt.Program.Actions[0].Name != "real" {
		t.Fatalf("actions = %+v", opt.Program.Actions)
	}
	joined := strings.Join(notes, "; ")
	if !strings.Contains(joined, "vacuous") {
		t.Fatalf("notes = %v", notes)
	}
}

func TestOptimizeDeduplicatesActions(t *testing.T) {
	c := compileT(t, `
var x : 0..2;
action a: x == 0 -> x := 1;
action b: x == 0 -> x := 1;
`)
	opt, cert, _, err := OptimizeAndCertify(c)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Level != CertIdentical {
		t.Fatalf("certificate = %s", cert)
	}
	if len(opt.Program.Actions) != 1 {
		t.Fatalf("actions = %d", len(opt.Program.Actions))
	}
}

func TestOptimizeTautologicalInitDropped(t *testing.T) {
	c := compileT(t, `
var x : 0..2;
init x == x;
action a: x < 2 -> x := x + 1;
`)
	opt, cert, _, err := OptimizeAndCertify(c)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Program.Init != nil {
		t.Fatalf("init survived: %s", opt.Program.Init)
	}
	if cert.Level != CertIdentical {
		t.Fatalf("certificate = %s", cert)
	}
}

func TestOptimizeDijkstra3IsIdentityTransformation(t *testing.T) {
	// The generator's output is already minimal: optimization must be a
	// certified no-op on the real protocol.
	src := compileT(t, dijkstra3Src)
	opt, cert, _, err := OptimizeAndCertify(src)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Level != CertIdentical {
		t.Fatalf("certificate = %s", cert)
	}
	if !system.TransitionsEqual(opt.System, src.System) {
		t.Fatal("automaton changed")
	}
}

func TestCertifyGradesSubRefinement(t *testing.T) {
	// A hand-made "optimization" that strengthens a guard (drops
	// transitions): certifiable as an everywhere refinement, not
	// identical.
	orig := compileT(t, `
var x : 0..2;
init x == 0;
action a: x < 2 -> x := x + 1;
action b: x == 2 -> x := 0;
action extra: x == 2 -> x := 1;
`)
	narrowed := compileT(t, `
var x : 0..2;
init x == 0;
action a: x < 2 -> x := x + 1;
action b: x == 2 -> x := 0;
`)
	cert := Certify(orig, narrowed)
	if cert.Level != CertEverywhere {
		t.Fatalf("certificate = %s", cert)
	}
}

func TestCertifyGradesCompression(t *testing.T) {
	// Replacing two steps by their composition away from the initial
	// states: a convergence refinement.
	orig := compileT(t, `
var x : 0..3;
init x == 0;
action step: x > 0 -> x := x - 1;
action loop: x == 0 -> x := 0;
`)
	jumped := compileT(t, `
var x : 0..3;
init x == 0;
action jump: x > 1 -> x := x - 2;
action step: x == 1 -> x := 0;
action loop: x == 0 -> x := 0;
`)
	cert := Certify(orig, jumped)
	if cert.Level != CertConvergence {
		t.Fatalf("certificate = %s", cert)
	}
}

func TestCertifyFails(t *testing.T) {
	orig := compileT(t, `
var x : 0..2;
init x == 0;
action down: x > 0 -> x := x - 1;
action loop: x == 0 -> x := 0;
`)
	rogue := compileT(t, `
var x : 0..2;
init x == 0;
action up: x < 2 -> x := x + 1;
action loop: x == 0 -> x := 0;
`)
	cert := Certify(orig, rogue)
	if cert.Preserved() {
		t.Fatalf("rogue transformation certified: %s", cert)
	}
	if !strings.Contains(cert.String(), "NOT certified") {
		t.Fatalf("String = %q", cert)
	}
}

func TestOptimizedProgramReparses(t *testing.T) {
	c := compileT(t, `
var x : 0..9;
action a: x == x && x + 0 < 9 -> x := x * 1 + 1;
`)
	opt, _, _, err := OptimizeAndCertify(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(opt.Program.String()); err != nil {
		t.Fatalf("optimized output does not reparse: %v\n%s", err, opt.Program)
	}
}
