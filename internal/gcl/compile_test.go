package gcl

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/system"
)

func TestCheckErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{"var x : bool;\ninit 3;", "init predicate must be boolean"},
		{"var x : bool;\naction a: 3 -> x := true;", "must be boolean"},
		{"var x : bool;\naction a: y -> x := true;", `undeclared variable "y"`},
		{"var x : bool;\naction a: x -> y := true;", `undeclared variable "y"`},
		{"var x : bool;\naction a: x -> x := 3;", "cannot assign int expression to bool"},
		{"var x : 0..3;\naction a: x == 0 -> x := true;", "cannot assign bool expression to int"},
		{"var x : 0..3;\naction a: x -> x := 0;", "must be boolean"},
		{"var x : bool;\naction a: !3 == 3 -> x := true;", "requires bool"},
		{"var x : bool;\naction a: -x > 0 -> x := true;", "requires int"},
		{"var x : bool;\naction a: x + 1 > 0 -> x := true;", "requires int operands"},
		{"var x : bool;\nvar y : 0..2;\naction a: x == y -> x := true;", "same-typed operands"},
		{"var x : 0..2;\naction a: x && x > 0 -> x := 0;", "requires bool operands"},
		{"var x : 0..2;\naction a: x < 1 -> x := 0; x := 1;", "assigns \"x\" twice"},
	}
	for _, tc := range cases {
		prog, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.src, err)
		}
		err = Check(prog)
		if err == nil {
			t.Errorf("Check(%q) passed, want error with %q", tc.src, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("Check(%q) = %q, want substring %q", tc.src, err, tc.wantSub)
		}
	}
}

func TestCompileCounter(t *testing.T) {
	c, err := Compile("counter", `
var x : 0..3;
init x == 0;
action inc: x < 3 -> x := x + 1;
`)
	if err != nil {
		t.Fatal(err)
	}
	sys := c.System
	if sys.NumStates() != 4 || sys.NumTransitions() != 3 {
		t.Fatalf("%s", sys)
	}
	if !sys.HasTransition(0, 1) || !sys.Terminal(3) {
		t.Fatal("transitions wrong")
	}
	if got := sys.InitStates(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("init = %v", got)
	}
}

func TestCompileSimultaneousAssignment(t *testing.T) {
	c, err := Compile("swap", `
var x : bool;
var y : bool;
action swap: x != y -> x := y; y := x;
`)
	if err != nil {
		t.Fatal(err)
	}
	sp := c.Space
	// From (x=1,y=0): simultaneous swap gives (x=0,y=1), not (0,0).
	from := sp.Encode(system.Vals{1, 0})
	to := sp.Encode(system.Vals{0, 1})
	if !c.System.HasTransition(from, to) {
		t.Fatal("simultaneous swap missing")
	}
	if c.System.HasTransition(from, sp.Encode(system.Vals{0, 0})) {
		t.Fatal("sequential-assignment artifact present")
	}
}

func TestCompileRangeOffset(t *testing.T) {
	c, err := Compile("neg", `
var x : -2..2;
init x == -2;
action up: x < 2 -> x := x + 1;
`)
	if err != nil {
		t.Fatal(err)
	}
	if c.System.NumStates() != 5 || c.System.NumTransitions() != 4 {
		t.Fatalf("%s", c.System)
	}
	// init state is encoded 0 (x=-2).
	if got := c.System.InitStates(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("init = %v", got)
	}
	if got := c.Space.StateString(0); got != "x=-2" {
		t.Fatalf("StateString = %q", got)
	}
}

func TestCompileDomainViolation(t *testing.T) {
	_, err := Compile("bad", `
var x : 0..2;
action over: x == 2 -> x := x + 1;
`)
	if err == nil || !strings.Contains(err.Error(), "outside 0..2") {
		t.Fatalf("err = %v", err)
	}
}

func TestCompileDivisionByZero(t *testing.T) {
	_, err := Compile("div", `
var x : 0..2;
action d: 1 / x == 1 -> x := 0;
`)
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v", err)
	}
}

func TestFloorModSemantics(t *testing.T) {
	// (x - 1) % 3 must be 2 when x == 0 (the paper's ⊖ under modulo 3).
	c, err := Compile("mod", `
var x : 0..2;
action dec: true -> x := (x - 1) % 3;
`)
	if err != nil {
		t.Fatal(err)
	}
	if !c.System.HasTransition(0, 2) {
		t.Fatal("(0-1)%3 should wrap to 2")
	}
	if !c.System.HasTransition(2, 1) || !c.System.HasTransition(1, 0) {
		t.Fatal("decrement transitions wrong")
	}
}

func TestShortCircuitPreventsEvalError(t *testing.T) {
	// x == 0 short-circuits the division; this must compile.
	c, err := Compile("sc", `
var x : 0..2;
action d: x == 0 || 2 / x == 2 -> x := 0;
`)
	if err != nil {
		t.Fatal(err)
	}
	if c.System.NumTransitions() == 0 {
		t.Fatal("no transitions")
	}
}

// TestCompiledDijkstra3IsSelfStabilizing is the end-to-end sanity check
// tying the whole pipeline together: parse the paper's 3-state system for
// three processes from concrete syntax, compile to an automaton, and run
// the stabilization checker on it.
func TestCompiledDijkstra3IsSelfStabilizing(t *testing.T) {
	c, err := Compile("dijkstra3", dijkstra3Src)
	if err != nil {
		t.Fatal(err)
	}
	if c.System.NumStates() != 27 {
		t.Fatalf("states = %d", c.System.NumStates())
	}
	rep := core.SelfStabilizing(c.System)
	if !rep.Holds {
		t.Fatalf("Dijkstra-3 (N=2) not self-stabilizing: %s\n%s",
			rep.Verdict, rep.FormatWitness(c.System))
	}
}

func TestEvalUnknownExprNodes(t *testing.T) {
	prog := &Program{Vars: []VarDecl{{Name: "x", Lo: 0, Hi: 1}}}
	if _, err := Eval(prog, nil2expr(), make(system.Vals, 1)); err == nil {
		t.Fatal("unknown node accepted")
	}
}

// nil2expr builds an expression node type Eval does not know.
type bogusExpr struct{}

func (bogusExpr) String() string { return "bogus" }
func (bogusExpr) Type() Type     { return TypeInvalid }
func (bogusExpr) Position() Pos  { return Pos{} }

func nil2expr() Expr { return bogusExpr{} }
