package gcl

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// randomExpr builds a random expression of the wanted type over the
// variables x (int, 0..3) and b (bool).
func randomExpr(rng *rand.Rand, want Type, depth int) string {
	if depth <= 0 {
		if want == TypeBool {
			return []string{"b", "true", "false", "!b"}[rng.Intn(4)]
		}
		return []string{"x", "0", "1", "2", "3"}[rng.Intn(5)]
	}
	if want == TypeBool {
		switch rng.Intn(6) {
		case 0:
			return fmt.Sprintf("(%s && %s)", randomExpr(rng, TypeBool, depth-1), randomExpr(rng, TypeBool, depth-1))
		case 1:
			return fmt.Sprintf("(%s || %s)", randomExpr(rng, TypeBool, depth-1), randomExpr(rng, TypeBool, depth-1))
		case 2:
			return fmt.Sprintf("!(%s)", randomExpr(rng, TypeBool, depth-1))
		case 3:
			op := []string{"==", "!=", "<", "<=", ">", ">="}[rng.Intn(6)]
			return fmt.Sprintf("(%s %s %s)", randomExpr(rng, TypeInt, depth-1), op, randomExpr(rng, TypeInt, depth-1))
		default:
			return randomExpr(rng, TypeBool, 0)
		}
	}
	switch rng.Intn(5) {
	case 0:
		return fmt.Sprintf("(%s + %s)", randomExpr(rng, TypeInt, depth-1), randomExpr(rng, TypeInt, depth-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", randomExpr(rng, TypeInt, depth-1), randomExpr(rng, TypeInt, depth-1))
	case 2:
		return fmt.Sprintf("(%s * %s)", randomExpr(rng, TypeInt, depth-1), randomExpr(rng, TypeInt, depth-1))
	case 3:
		// Keep divisors non-zero literals so programs always compile.
		return fmt.Sprintf("(%s %% %d)", randomExpr(rng, TypeInt, depth-1), 1+rng.Intn(3))
	default:
		return randomExpr(rng, TypeInt, 0)
	}
}

// TestQuickOptimizerSoundness generates random programs, optimizes them,
// and requires certification at τ-equivalence or better: the rewrite set
// (constant folding, boolean identities, vacuous-action and duplicate
// elimination) must never change observable behavior.
func TestQuickOptimizerSoundness(t *testing.T) {
	accepted := 0
	for trial := 0; trial < 300; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		var b strings.Builder
		b.WriteString("var x : 0..3;\nvar b : bool;\n")
		nActions := 1 + rng.Intn(4)
		for i := 0; i < nActions; i++ {
			guard := randomExpr(rng, TypeBool, 2)
			// Assignments stay in range: x := <expr> % 4 guarantees the
			// domain; booleans are unrestricted.
			if rng.Intn(2) == 0 {
				fmt.Fprintf(&b, "action a%d: %s -> x := (%s) %% 4;\n", i, guard, randomExpr(rng, TypeInt, 2))
			} else {
				fmt.Fprintf(&b, "action a%d: %s -> b := %s;\n", i, guard, randomExpr(rng, TypeBool, 2))
			}
		}
		src := b.String()
		orig, err := Compile("rand", src)
		if err != nil {
			// Domain violations from negative intermediates are possible;
			// they are compile-time rejections, not optimizer inputs.
			continue
		}
		accepted++
		opt, cert, _, err := OptimizeAndCertify(orig)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		if cert.Level < CertTauEquivalent {
			t.Fatalf("trial %d: certificate only %s\noriginal:\n%s\noptimized:\n%s",
				trial, cert, src, opt.Program)
		}
	}
	if accepted < 100 {
		t.Fatalf("only %d/300 random programs compiled; generator too narrow", accepted)
	}
}

// TestQuickSimplifyPreservesValue checks the expression simplifier
// pointwise: for random expressions, the simplified form evaluates to the
// same value in every environment.
func TestQuickSimplifyPreservesValue(t *testing.T) {
	for trial := 0; trial < 400; trial++ {
		rng := rand.New(rand.NewSource(int64(5000 + trial)))
		want := TypeBool
		if rng.Intn(2) == 0 {
			want = TypeInt
		}
		src := fmt.Sprintf("var x : 0..3;\nvar b : bool;\ninit %s == %s;\naction a: true -> x := 0;",
			randomExpr(rng, want, 3), randomExpr(rng, want, 3))
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		if err := Check(prog); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		simplified := simplify(prog.Init)
		// Compare on every environment (x ∈ 0..3 × b ∈ {0,1}).
		for x := 0; x < 4; x++ {
			for bv := 0; bv < 2; bv++ {
				env := []int{x, bv}
				v1, err1 := Eval(prog, prog.Init, env)
				v2, err2 := Eval(prog, simplified, env)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("trial %d: error behavior changed: %v vs %v\n%s", trial, err1, err2, src)
				}
				if err1 == nil && v1 != v2 {
					t.Fatalf("trial %d: value changed at x=%d b=%d: %d vs %d\nexpr: %s\nsimplified: %s",
						trial, x, bv, v1, v2, prog.Init, simplified)
				}
			}
		}
	}
}
