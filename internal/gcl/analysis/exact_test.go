package analysis

import (
	"strings"
	"testing"

	"repro/internal/gcl"
	"repro/internal/mc"
	"repro/internal/system"
)

// enumerateGuard brute-forces, independently of the exact tier's own
// sweep, in how many states an action's guard holds. Tests use it to
// confirm that exact-confidence verdicts agree with enumeration.
func enumerateGuard(t *testing.T, prog *gcl.Program, action string) (enabled, total int) {
	t.Helper()
	sp := gcl.SpaceOf(prog)
	var guard gcl.Expr
	for i := range prog.Actions {
		if prog.Actions[i].Name == action {
			guard = prog.Actions[i].Guard
		}
	}
	if guard == nil {
		t.Fatalf("no action %q", action)
	}
	env := make(system.Vals, len(prog.Vars))
	for s := 0; s < sp.Size(); s++ {
		env = sp.Decode(s, env)
		on, err := gcl.EvalBool(prog, guard, env)
		if err == nil && on {
			enabled++
		}
	}
	return enabled, sp.Size()
}

// TestExactConfirmsDeadGuard: program 1 of the ≥2 the acceptance
// criteria require — an interval-tier dead guard is re-derived with
// exact confidence, and the test's own enumeration agrees.
func TestExactConfirmsDeadGuard(t *testing.T) {
	src := `
var x : 0..3;
var y : 0..3;
action dead: x + y > 9 -> x := 0;
action live: x < 3 -> x := x + 1;
`
	prog, err := gcl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := findCode(t, approx.Diags, CodeDeadGuard); d.Confidence != ConfApprox {
		t.Fatalf("interval tier: %+v", d)
	}
	exact, err := Analyze(prog, Options{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Exact {
		t.Fatal("exact tier did not run")
	}
	d := findCode(t, exact.Diags, CodeDeadGuard)
	if d.Confidence != ConfExact {
		t.Fatalf("not confirmed: %+v", d)
	}
	// Independent enumeration: the guard really holds nowhere.
	if enabled, total := enumerateGuard(t, prog, "dead"); enabled != 0 || total != 16 {
		t.Fatalf("enumeration disagrees: enabled=%d total=%d", enabled, total)
	}
}

// TestExactConfirmsStutterAndTautology: program 2 — a pinned stutter
// action and a tautological guard both get exact confidence, and
// enumeration confirms the tautology holds in every state.
func TestExactConfirmsStutterAndTautology(t *testing.T) {
	src := `
var x : 0..4;
action all: x >= 0 -> x := (x + 1) % 5;
action pin: x == 2 -> x := 2;
`
	prog, err := gcl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := findCode(t, approx.Diags, CodeStutterAction); d.Confidence != ConfApprox {
		t.Fatalf("interval tier stutter: %+v", d)
	}
	if d := findCode(t, approx.Diags, CodeTautologyGuard); d.Confidence != ConfApprox {
		t.Fatalf("interval tier tautology: %+v", d)
	}
	exact, err := Analyze(prog, Options{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Exact {
		t.Fatal("exact tier did not run")
	}
	if d := findCode(t, exact.Diags, CodeStutterAction); d.Confidence != ConfExact {
		t.Fatalf("stutter not confirmed: %+v", d)
	}
	if d := findCode(t, exact.Diags, CodeTautologyGuard); d.Confidence != ConfExact {
		t.Fatalf("tautology not confirmed: %+v", d)
	}
	if enabled, total := enumerateGuard(t, prog, "all"); enabled != total {
		t.Fatalf("enumeration disagrees with tautology: %d of %d", enabled, total)
	}
}

// TestExactDowngradesFalseEscape: the interval domain cannot see that
// x - x + 1 is constant, so the interval tier warns about a possible
// domain escape; enumeration finds no escaping state and downgrades
// the warning to an info instead of dropping it.
func TestExactDowngradesFalseEscape(t *testing.T) {
	src := `
var x : 1..3;
action norm: true -> x := x - x + 1;
`
	prog, err := gcl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := findCode(t, approx.Diags, CodeDomainEscape); d.Severity != SevWarning {
		t.Fatalf("interval tier: %+v", d)
	}
	exact, err := Analyze(prog, Options{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	d := findCode(t, exact.Diags, CodeDomainEscape)
	if d.Severity != SevInfo || d.Confidence != ConfExact {
		t.Fatalf("not downgraded: %+v", d)
	}
	if !strings.Contains(d.Msg, "no state") {
		t.Fatalf("downgrade msg: %s", d.Msg)
	}
}

func TestExactEscapeWitness(t *testing.T) {
	res := mustAnalyze(t, `
var x : 0..3;
action over: x == 3 -> x := x + 10;
`, Options{Exact: true})
	d := findCode(t, res.Diags, CodeDomainEscape)
	if d.Severity != SevError || d.Confidence != ConfExact {
		t.Fatalf("escape: %+v", d)
	}
	if len(d.Related) != 1 || !strings.Contains(d.Related[0].Msg, "x=3") {
		t.Fatalf("witness: %+v", d.Related)
	}
}

func TestExactUnreachableAction(t *testing.T) {
	res := mustAnalyze(t, `
var x : 0..3;
var fault : bool;
init x == 0 && !fault;
action work: !fault && x < 3 -> x := x + 1;
action stuck: fault -> fault := true;
`, Options{Exact: true})
	d := findCode(t, res.Diags, CodeUnreachableAction)
	if d.Confidence != ConfExact || !strings.Contains(d.Msg, "stuck") {
		t.Fatalf("unreachable: %+v", d)
	}
	// The reachable action must not be flagged.
	for _, dd := range res.Diags {
		if dd.Code == CodeUnreachableAction && strings.Contains(dd.Msg, "work") {
			t.Fatalf("reachable action flagged: %v", dd)
		}
	}
}

func TestNoUnreachableWithoutInit(t *testing.T) {
	res := mustAnalyze(t, `
var x : 0..3;
action a: x == 0 -> x := 1;
`, Options{Exact: true})
	if hasCode(res.Diags, CodeUnreachableAction) {
		t.Fatalf("GCL004 without init: %v", res.Diags)
	}
}

// TestOverlapSameSuccessorSuppressed mirrors the dijkstra3 middle
// process: mid_up and mid_dn are co-enabled only when c0 == c2, where
// both write the same value — not observable nondeterminism. A pair
// with genuinely different successors is flagged.
func TestOverlapSameSuccessorSuppressed(t *testing.T) {
	res := mustAnalyze(t, `
var x : 0..2;
var y : 0..2;
var z : 0..2;
action up: x == y -> z := x;
action dn: x == y -> z := y;
action conflict: x == y -> x := (x + 1) % 3;
`, Options{Exact: true})
	for _, d := range res.Diags {
		if d.Code != CodeOverlappingGuards {
			continue
		}
		if strings.Contains(d.Msg, `"up" and "dn"`) {
			t.Fatalf("same-successor pair flagged: %v", d)
		}
	}
	found := false
	for _, d := range res.Diags {
		if d.Code == CodeOverlappingGuards && strings.Contains(d.Msg, "conflict") {
			found = true
			if d.Confidence != ConfExact {
				t.Fatalf("overlap confidence: %+v", d)
			}
		}
	}
	if !found {
		t.Fatalf("conflicting pair not flagged: %v", res.Diags)
	}
}

func TestExactInitUnsat(t *testing.T) {
	res := mustAnalyze(t, `
var x : 0..2;
init (x + 1) % 3 == x;
action a: true -> x := (x + 1) % 3;
`, Options{Exact: true})
	d := findCode(t, res.Diags, CodeInitUnsat)
	// The interval tier cannot decide (x+1)%3 == x; only enumeration
	// proves there is no initial state.
	if d.Confidence != ConfExact || d.Severity != SevError {
		t.Fatalf("init unsat: %+v", d)
	}
}

// TestExactBudgetExhaustion: when the gas runs out mid-sweep the
// analysis falls back to the interval tier's verdicts instead of
// failing.
func TestExactBudgetExhaustion(t *testing.T) {
	src := `
var x : 0..3;
var y : 0..3;
action dead: x + y > 9 -> x := 0;
action live: x < 3 -> x := x + 1;
`
	prog, err := gcl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(prog, Options{Exact: true, Gas: mc.NewGas(nil, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatal("exact tier claimed completion with 3 gas")
	}
	if d := findCode(t, res.Diags, CodeDeadGuard); d.Confidence != ConfApprox {
		t.Fatalf("fallback diag: %+v", d)
	}
}

func TestExactSkipsLargeSpaces(t *testing.T) {
	res := mustAnalyze(t, `
var a : 0..9;
var b : 0..9;
var c : 0..9;
action t: a > 90 -> a := 0;
`, Options{Exact: true, ExactStateLimit: 100})
	if res.Exact {
		t.Fatal("exact tier ran above its state limit")
	}
	if d := findCode(t, res.Diags, CodeDeadGuard); d.Confidence != ConfApprox {
		t.Fatalf("diag: %+v", d)
	}
}

func TestCardProductSaturates(t *testing.T) {
	prog, err := gcl.Parse(`
var a : 0..1000000;
var b : 0..1000000;
var c : 0..1000000;
var d : 0..1000000;
action t: true -> a := a;
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := cardProduct(prog, 1<<16); got != 1<<16+1 {
		t.Fatalf("cardProduct = %d", got)
	}
}
