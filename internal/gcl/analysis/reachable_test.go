package analysis

import (
	"strings"
	"testing"
)

// TestUnreachableStatic is the basic GCL011 shape: y == 5 is
// satisfiable over 0..7 (so GCL001 stays silent) but no action ever
// moves y off its initial 0.
func TestUnreachableStatic(t *testing.T) {
	res := mustAnalyze(t, `
var x : 0..3;
var y : 0..7;
init x == 0 && y == 0;
action step:    x < 3  -> x := x + 1;
action unreach: y == 5 -> y := 0;
`, Options{})
	d := findCode(t, res.Diags, CodeUnreachableStatic)
	if d.Confidence != ConfApprox || d.Severity != SevWarning {
		t.Fatalf("diag: %+v", d)
	}
	if d.Pos.Line != 6 {
		t.Fatalf("position: %v", d.Pos)
	}
	if !strings.Contains(d.Msg, "reachable from init") {
		t.Fatalf("msg: %s", d.Msg)
	}
	if hasCode(res.Diags, CodeDeadGuard) {
		t.Fatalf("GCL011 case must not also be GCL001: %v", res.Diags)
	}
}

// TestReachableThroughFixpoint makes sure reachability propagates
// through multiple rounds and across variables: target's guard only
// becomes satisfiable after step has run three times and unlock once.
func TestReachableThroughFixpoint(t *testing.T) {
	res := mustAnalyze(t, `
var x : 0..3;
var y : 0..1;
init x == 0 && y == 0;
action step:   x < 3           -> x := x + 1;
action unlock: x == 3          -> y := 1;
action target: y == 1 && x > 0 -> x := 0;
`, Options{})
	if hasCode(res.Diags, CodeUnreachableStatic) {
		t.Fatalf("reachable action flagged: %v", res.Diags)
	}
}

// TestUnreachableStaticNeedsInit: without an init predicate every
// state is a legitimate start, so nothing is unreachable.
func TestUnreachableStaticNeedsInit(t *testing.T) {
	res := mustAnalyze(t, `
var y : 0..7;
action a: y == 5 -> y := 0;
action b: y < 7  -> y := y + 1;
`, Options{})
	if hasCode(res.Diags, CodeUnreachableStatic) {
		t.Fatalf("no-init program flagged: %v", res.Diags)
	}
}

// TestUnreachableStaticSkipsDeadGuards: a guard that is dead over the
// declared domains is GCL001's finding alone — GCL011 must not pile
// on.
func TestUnreachableStaticSkipsDeadGuards(t *testing.T) {
	res := mustAnalyze(t, `
var x : 0..3;
init x == 0;
action dead: x > 5 -> x := 0;
action live: x < 3 -> x := x + 1;
`, Options{})
	if !hasCode(res.Diags, CodeDeadGuard) {
		t.Fatalf("dead guard not flagged: %v", res.Diags)
	}
	if hasCode(res.Diags, CodeUnreachableStatic) {
		t.Fatalf("dead guard double-reported as GCL011: %v", res.Diags)
	}
}

// TestUnreachableStaticEscapeBlocks: an assignment that always leaves
// its domain yields no successor state, so it must not grow the
// reachability box (the concrete sweep drops such transitions too).
func TestUnreachableStaticEscapeBlocks(t *testing.T) {
	res := mustAnalyze(t, `
var x : 0..3;
init x == 0;
action blast: x == 0 -> x := x + 10;
action after: x == 1 -> x := 0;
`, Options{})
	d := findCode(t, res.Diags, CodeUnreachableStatic)
	if !strings.Contains(d.Msg, `"after"`) {
		t.Fatalf("diag: %+v", d)
	}
}

// TestUnreachableStaticExactAgrees: on a small space the exact tier
// corroborates the interval proof with GCL004 — the two codes describe
// the same defect from different tiers and both survive the merge.
func TestUnreachableStaticExactAgrees(t *testing.T) {
	res := mustAnalyze(t, `
var x : 0..3;
var y : 0..7;
init x == 0 && y == 0;
action step:    x < 3  -> x := x + 1;
action unreach: y == 5 -> y := 0;
`, Options{Exact: true})
	if !res.Exact {
		t.Fatal("exact tier must run on 32 states")
	}
	d11 := findCode(t, res.Diags, CodeUnreachableStatic)
	d4 := findCode(t, res.Diags, CodeUnreachableAction)
	if d11.Confidence != ConfApprox || d4.Confidence != ConfExact {
		t.Fatalf("confidences: GCL011 %v, GCL004 %v", d11.Confidence, d4.Confidence)
	}
}
