package analysis

import (
	"strings"
	"testing"

	"repro/internal/gcl"
)

// FuzzAnalyze asserts two things on arbitrary inputs: the analyzer
// never panics, and on small state spaces every definite interval-tier
// claim survives exact enumeration. The seed corpus mirrors
// internal/gcl's fuzz seeds plus programs that hit each analyzer.
func FuzzAnalyze(f *testing.F) {
	// Seeds shared with gcl.FuzzParse / gcl.FuzzCompile.
	f.Add("var x : 0..2;\naction a: x < 2 -> x := x + 1;")
	f.Add("var b : bool;\ninit !b;\naction t: b || !b -> b := false;")
	f.Add("var x : -5..5;\naction n: -x == 5 -> x := 0;")
	f.Add("var x : 0..1; action broken")
	f.Add("/* unterminated")
	f.Add("🤖")
	f.Add("var x : 0..2;\naction a: true -> x := (x + 1) % 3;")
	f.Add("var x : 0..2;\naction a: true -> x := x + 1;") // domain overflow
	f.Add("var x : 0..2;\naction a: 1 / x == 1 -> x := 0;")
	// Analyzer-specific seeds.
	f.Add("var x : 0..3;\naction dead: x > 5 -> x := 0;")
	f.Add("var x : 0..3;\nvar ghost : bool;\naction s: x == 1 -> x := 1;")
	f.Add("var x : 0..9;\ninit x > 20;\naction a: x < 3 && x > 6 -> x := x / 0;")
	f.Add("var x : 1..3;\naction norm: true -> x := x - x + 1;")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		prog, err := gcl.Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		res, err := Analyze(prog, Options{Exact: true, ExactStateLimit: 1 << 10})
		if err != nil {
			return // check errors are fine
		}
		if !res.Exact {
			return // space too large to cross-check
		}
		// Exact results replace every decided approx claim, so any
		// surviving definite verdict was confirmed by enumeration.
		// Sanity-check the merge really happened.
		for _, d := range res.Diags {
			switch d.Code {
			case CodeDeadGuard, CodeTautologyGuard, CodeUnreachableAction,
				CodeStutterAction, CodeInitUnsat, CodeOverlappingGuards:
				if d.Confidence != ConfExact {
					t.Fatalf("approx %s leaked through exact merge: %+v", d.Code, d)
				}
			case CodeDomainEscape:
				if d.Severity == SevError && d.Confidence != ConfExact {
					t.Fatalf("definite escape not confirmed: %+v", d)
				}
			}
			if d.Msg == "" || !strings.HasPrefix(string(d.Code), "GCL") {
				t.Fatalf("malformed diagnostic: %+v", d)
			}
		}
	})
}
