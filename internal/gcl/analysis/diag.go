// Package analysis is the GCL static-analysis engine: a registry of
// independent analyzers run over a checked *gcl.Program, reporting
// stable-coded diagnostics. Two tiers cooperate:
//
//   - an abstract-interpretation tier evaluates every expression over
//     the interval + constant domain induced by the declared variable
//     ranges — cheap (linear in program size, independent of the state
//     space) and sound for its "definitely" claims, but incomplete;
//   - an exact tier enumerates small state spaces under an mc.Gas
//     budget, confirming or downgrading the interval tier's verdicts,
//     and adding the diagnostics that need real reachability.
//
// The motivation is the paper's Figure 1 trap: a dead guard or an
// out-of-domain assignment silently shrinks the reachable state space
// and makes the convergence-refinement battery vacuously pass. Lint
// verdicts surface such defects before any model checking runs.
package analysis

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/gcl"
)

// Severity grades a diagnostic. Errors make `gclc lint` exit nonzero;
// warnings and infos do not.
type Severity int

// Severity levels, weakest first.
const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	default:
		return "info"
	}
}

// MarshalJSON renders the severity as its lowercase name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON parses the lowercase name back.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "error":
		*s = SevError
	case "warning":
		*s = SevWarning
	case "info":
		*s = SevInfo
	default:
		return fmt.Errorf("unknown severity %q", name)
	}
	return nil
}

// Confidence records which tier established a diagnostic. Approx means
// the interval abstraction; Exact means state-space enumeration
// confirmed it (mirroring the optimizer's Certificate levels: an
// abstract proof is sound but a concrete witness is stronger and can
// carry an example state).
type Confidence int

// Confidence levels.
const (
	ConfApprox Confidence = iota
	ConfExact
)

// String names the confidence.
func (c Confidence) String() string {
	if c == ConfExact {
		return "exact"
	}
	return "approx"
}

// MarshalJSON renders the confidence as its lowercase name.
func (c Confidence) MarshalJSON() ([]byte, error) { return json.Marshal(c.String()) }

// UnmarshalJSON parses the lowercase name back.
func (c *Confidence) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "exact":
		*c = ConfExact
	case "approx":
		*c = ConfApprox
	default:
		return fmt.Errorf("unknown confidence %q", name)
	}
	return nil
}

// Code is a stable diagnostic code. Codes are append-only: a released
// code never changes meaning, so CI suppressions and the verdict cache
// stay valid across versions.
type Code string

// The diagnostic codes. docs/diagnostics.md documents each one.
const (
	// CodeDeadGuard: an action's guard can never be satisfied.
	CodeDeadGuard Code = "GCL001"
	// CodeTautologyGuard: a non-literal guard is always true.
	CodeTautologyGuard Code = "GCL002"
	// CodeDomainEscape: an assignment's value can leave the target's
	// declared domain (compilation would reject the program).
	CodeDomainEscape Code = "GCL003"
	// CodeUnreachableAction: the guard is satisfiable, but never in a
	// state reachable from init.
	CodeUnreachableAction Code = "GCL004"
	// CodeUnusedVar: a declared variable is never read or written.
	CodeUnusedVar Code = "GCL005"
	// CodeWriteOnlyVar: a variable is assigned but never read.
	CodeWriteOnlyVar Code = "GCL006"
	// CodeOverlappingGuards: two actions are simultaneously enabled in
	// some state and move to different successors.
	CodeOverlappingGuards Code = "GCL007"
	// CodeStutterAction: every assignment of an action provably rewrites
	// the current value — the action is a τ self-loop.
	CodeStutterAction Code = "GCL008"
	// CodeInitUnsat: the init predicate is unsatisfiable.
	CodeInitUnsat Code = "GCL009"
	// CodeConstCond: a condition subexpression is constant over the
	// declared domains.
	CodeConstCond Code = "GCL010"
	// CodeUnreachableStatic: the interval reachability fixpoint proves
	// the guard holds in no state reachable from init — GCL004's claim,
	// established without enumerating the state space.
	CodeUnreachableStatic Code = "GCL011"
)

// Related points at a secondary source location supporting a
// diagnostic (the other action of an overlap, a witness state, …).
type Related struct {
	Pos gcl.Pos
	Msg string
}

// relatedWire is the flattened JSON shape of a Related note.
type relatedWire struct {
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Msg  string `json:"msg"`
}

// MarshalJSON renders the related note with flattened position fields.
func (r Related) MarshalJSON() ([]byte, error) {
	return json.Marshal(relatedWire{r.Pos.Line, r.Pos.Col, r.Msg})
}

// UnmarshalJSON parses the flattened form back.
func (r *Related) UnmarshalJSON(b []byte) error {
	var w relatedWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*r = Related{Pos: gcl.Pos{Line: w.Line, Col: w.Col}, Msg: w.Msg}
	return nil
}

// Diag is one diagnostic.
type Diag struct {
	Pos        gcl.Pos
	Code       Code
	Severity   Severity
	Confidence Confidence
	Msg        string
	Related    []Related
}

// String renders the diagnostic in the usual file-less compiler shape:
// "line:col: severity CODE: msg (confidence)".
func (d Diag) String() string {
	return fmt.Sprintf("%s: %s %s: %s (%s)", d.Pos, d.Severity, d.Code, d.Msg, d.Confidence)
}

// diagWire is the flattened JSON shape of a Diag.
type diagWire struct {
	Line       int        `json:"line"`
	Col        int        `json:"col"`
	Code       Code       `json:"code"`
	Severity   Severity   `json:"severity"`
	Confidence Confidence `json:"confidence"`
	Msg        string     `json:"msg"`
	Related    []Related  `json:"related,omitempty"`
}

// MarshalJSON is the machine-readable form consumed by `gclc lint
// -json` and the /v1/lint endpoint.
func (d Diag) MarshalJSON() ([]byte, error) {
	return json.Marshal(diagWire{d.Pos.Line, d.Pos.Col, d.Code, d.Severity, d.Confidence, d.Msg, d.Related})
}

// UnmarshalJSON parses the flattened form back, so API clients can
// decode a lint report into the same type the analyzer produces.
func (d *Diag) UnmarshalJSON(b []byte) error {
	var w diagWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*d = Diag{
		Pos: gcl.Pos{Line: w.Line, Col: w.Col}, Code: w.Code,
		Severity: w.Severity, Confidence: w.Confidence, Msg: w.Msg, Related: w.Related,
	}
	return nil
}

// Sort orders diagnostics by position, then code, then message, and
// drops exact duplicates (same position, code, and message) — two
// analyzers agreeing on a finding report it once.
func Sort(diags []Diag) []Diag {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Msg < b.Msg
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 {
			prev := out[len(out)-1]
			if prev.Pos == d.Pos && prev.Code == d.Code && prev.Msg == d.Msg {
				// Keep the stronger confidence of the two.
				if d.Confidence > prev.Confidence {
					out[len(out)-1] = d
				}
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// ErrorCount counts error-severity diagnostics; `gclc lint` maps a
// nonzero count to exit code 1.
func ErrorCount(diags []Diag) int {
	n := 0
	for _, d := range diags {
		if d.Severity == SevError {
			n++
		}
	}
	return n
}
