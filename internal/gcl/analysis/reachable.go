package analysis

import (
	"fmt"

	"repro/internal/gcl"
)

// The reachable analyzer: an interval-domain reachability fixpoint.
// Where GCL001 asks "can this guard hold in *any* state of the
// declared domains?", GCL011 asks the sharper question "can it hold in
// any state *reachable from init*?" — answered without enumerating a
// single state. The fixpoint over-approximates the reachable set by a
// box (one interval per variable), so its "unreachable" verdict is
// sound: if the guard cannot hold anywhere inside the box, it cannot
// hold in any concretely reachable state. The exact tier's GCL004 is
// the enumeration-backed counterpart; GCL011 is the tier that still
// works when the state space is too large to sweep.

// reachFixpointCap bounds the fixpoint iterations as a defense against
// a non-monotone abstract step (which the Join-based update rules
// out); each round strictly grows some interval, and intervals are
// bounded by the declared domains, so the bound is never reached in
// practice.
const reachFixpointCap = 1 << 20

// reachEnv computes the box over-approximation of the states reachable
// from init: start from the init-refined top state, then repeatedly
// fire every abstractly enabled action — evaluating all right-hand
// sides simultaneously over the guard-refined pre-state, clamping each
// result to its declared domain (an out-of-domain value produces no
// successor, mirroring the concrete semantics) — and join the
// post-state in, until nothing changes.
func reachEnv(p *Pass) (env, bool) {
	prog := p.Prog
	reach, sat := refineByGuard(prog, prog.Init, p.Top)
	if !sat {
		return nil, false // no initial states: GCL009's business
	}
	for round := 0; round < reachFixpointCap; round++ {
		changed := false
		for ai := range prog.Actions {
			a := &prog.Actions[ai]
			ge, ok := refineByGuard(prog, a.Guard, reach)
			if !ok || !guardMayHold(prog, a.Guard, reach) {
				continue // not enabled anywhere in the current box
			}
			post := ge.clone()
			blocked := false
			for _, as := range a.Assigns {
				vi := identIndex(prog, as.Name)
				rhs := evalExpr(prog, as.Expr, ge).Intersect(p.Top[vi])
				if rhs.IsEmpty() {
					// Evaluation always errors or always escapes the
					// domain: the action yields no successor state.
					blocked = true
					break
				}
				post[vi] = rhs
			}
			if blocked {
				continue
			}
			for vi := range reach {
				joined := reach[vi].Join(post[vi])
				if joined != reach[vi] {
					reach[vi] = joined
					changed = true
				}
			}
		}
		if !changed {
			return reach, true
		}
	}
	return reach, true // unreachable with a monotone step; see reachFixpointCap
}

// guardMayHold reports whether the guard can evaluate to true in some
// state of the box e (abstractly: its value interval contains true).
func guardMayHold(prog *gcl.Program, guard gcl.Expr, e env) bool {
	v := evalExpr(prog, guard, e)
	return v != ivFalse && !v.IsEmpty()
}

// runReachable flags actions whose guard is satisfiable over the
// declared domains (so GCL001 stays silent) but cannot hold anywhere
// in the reachability box — the action is dead for every execution
// that starts in init.
func runReachable(p *Pass) []Diag {
	if p.Prog.Init == nil {
		return nil // no init: every state is a legitimate start
	}
	reach, ok := reachEnv(p)
	if !ok {
		return nil
	}
	var diags []Diag
	for i, g := range p.guardStates() {
		if g.dead() {
			continue // GCL001 already covers the action
		}
		a := &p.Prog.Actions[i]
		if _, sat := refineByGuard(p.Prog, a.Guard, reach); sat && guardMayHold(p.Prog, a.Guard, reach) {
			continue
		}
		diags = append(diags, Diag{
			Pos: a.Guard.Position(), Code: CodeUnreachableStatic, Severity: SevWarning,
			Msg: fmt.Sprintf("guard of action %q is satisfiable but holds in no state reachable from init (interval reachability); the action is dead", a.Name),
		})
	}
	return diags
}
