package analysis

import (
	"fmt"

	"repro/internal/gcl"
	"repro/internal/mc"
	"repro/internal/system"
)

// The exact tier: a full enumeration of the program's state space
// under an mc.Gas budget. Where the interval tier over-approximates,
// enumeration decides — it confirms interval verdicts (upgrading
// their confidence to exact, often with a witness state), downgrades
// "may" warnings that no concrete state realizes, and contributes the
// diagnostics that need real reachability (GCL004) or co-enabledness
// (GCL007). The sweep mirrors gcl.CompileProgram's loop but tolerates
// the defects compilation rejects: an out-of-domain assignment
// becomes a diagnostic with a witness instead of a fatal error.

// exactFacts aggregates everything one sweep learns.
type exactFacts struct {
	states int
	space  *system.Space

	initCount  int
	enabled    []int       // per action: states where the guard holds
	reachable  []bool      // per state (only when Init != nil)
	reachEnab  []int       // per action: enabled states reachable from init
	stutters   []bool      // per action: identity in every enabled state
	escapes    []escapeSet // per action
	guardError []int       // per action: states where guard evaluation errors
	overlaps   map[[2]int]*overlap
}

type escapeSet struct {
	// byAssign maps assignment index -> count and first witness state.
	count   []int
	witness []int
}

type overlap struct {
	count   int
	witness int
}

// runExact enumerates the state space, spending gas per state×action.
// It returns nil facts when the budget runs out: partial sweeps prove
// nothing.
func runExact(prog *gcl.Program, gas *mc.Gas) (*exactFacts, error) {
	sp := gcl.SpaceOf(prog)
	n := sp.Size()
	numA := len(prog.Actions)
	f := &exactFacts{
		states:     n,
		space:      sp,
		enabled:    make([]int, numA),
		reachEnab:  make([]int, numA),
		stutters:   make([]bool, numA),
		escapes:    make([]escapeSet, numA),
		guardError: make([]int, numA),
		overlaps:   make(map[[2]int]*overlap),
	}
	for ai := range prog.Actions {
		f.stutters[ai] = true
		f.escapes[ai] = escapeSet{
			count:   make([]int, len(prog.Actions[ai].Assigns)),
			witness: make([]int, len(prog.Actions[ai].Assigns)),
		}
	}

	// Successor lists are needed only for reachability.
	var succ [][]int32
	if prog.Init != nil {
		succ = make([][]int32, n)
	}
	initStates := make([]int, 0, 16)

	env := make(system.Vals, len(prog.Vars))
	next := make(system.Vals, len(prog.Vars))
	enabledHere := make([]int, 0, numA)
	nextOf := make([]int, numA) // successor state per enabled action, -1 if escaping
	for s := 0; s < n; s++ {
		env = sp.Decode(s, env)
		if prog.Init != nil {
			isInit, err := gcl.EvalBool(prog, prog.Init, env)
			if err == nil && isInit {
				f.initCount++
				initStates = append(initStates, s)
			}
		}
		enabledHere = enabledHere[:0]
		for ai := range prog.Actions {
			if err := gas.Tick(1); err != nil {
				return nil, err
			}
			a := &prog.Actions[ai]
			on, err := gcl.EvalBool(prog, a.Guard, env)
			if err != nil {
				f.guardError[ai]++
				continue
			}
			if !on {
				continue
			}
			f.enabled[ai]++
			copy(next, env)
			identity := true
			escaped := false
			for asi, as := range a.Assigns {
				vi := identIndex(prog, as.Name)
				decl := prog.Vars[vi]
				v, err := gcl.Eval(prog, as.Expr, env)
				if err != nil {
					// RHS errors (division by zero): no value, no successor.
					escaped = true
					identity = false
					continue
				}
				lo, hi := decl.Lo, decl.Hi
				if decl.IsBool {
					lo, hi = 0, 1
				}
				if v < lo || v > hi {
					if f.escapes[ai].count[asi] == 0 {
						f.escapes[ai].witness[asi] = s
					}
					f.escapes[ai].count[asi]++
					escaped = true
					identity = false // the escaping value differs from the in-domain current one
					continue
				}
				enc := v - lo
				if enc != env[vi] {
					identity = false
				}
				next[vi] = enc
			}
			if !identity {
				f.stutters[ai] = false
			}
			nextOf[ai] = -1
			if !escaped {
				ns := sp.Encode(next)
				nextOf[ai] = ns
				if succ != nil {
					succ[s] = append(succ[s], int32(ns))
				}
			}
			enabledHere = append(enabledHere, ai)
		}
		// Co-enabled pairs that disagree on the successor state: the
		// daemon's choice is observable. Pairs with identical successors
		// (or no successor) are not recorded — they are not a source of
		// nondeterministic behavior.
		for x := 0; x < len(enabledHere); x++ {
			for y := x + 1; y < len(enabledHere); y++ {
				i, j := enabledHere[x], enabledHere[y]
				if nextOf[i] == nextOf[j] {
					continue
				}
				key := [2]int{i, j}
				o := f.overlaps[key]
				if o == nil {
					o = &overlap{witness: s}
					f.overlaps[key] = o
				}
				o.count++
			}
		}
	}

	if prog.Init != nil {
		f.reachable = make([]bool, n)
		queue := make([]int, 0, len(initStates))
		for _, s := range initStates {
			if !f.reachable[s] {
				f.reachable[s] = true
				queue = append(queue, s)
			}
		}
		for len(queue) > 0 {
			s := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, ns := range succ[s] {
				if err := gas.Tick(1); err != nil {
					return nil, err
				}
				if !f.reachable[ns] {
					f.reachable[ns] = true
					queue = append(queue, int(ns))
				}
			}
		}
		// Second pass over reachable states to count per-action enabled
		// occurrences within the reachable set.
		for s := 0; s < n; s++ {
			if !f.reachable[s] {
				continue
			}
			env = sp.Decode(s, env)
			for ai := range prog.Actions {
				if err := gas.Tick(1); err != nil {
					return nil, err
				}
				on, err := gcl.EvalBool(prog, prog.Actions[ai].Guard, env)
				if err == nil && on {
					f.reachEnab[ai]++
				}
			}
		}
	}
	return f, nil
}

// exactDiags converts sweep facts into diagnostics, all carrying
// exact confidence.
func exactDiags(prog *gcl.Program, f *exactFacts) []Diag {
	var diags []Diag
	state := func(s int) string { return f.space.StateString(s) }

	if prog.Init != nil && f.initCount == 0 {
		diags = append(diags, Diag{
			Pos: prog.Init.Position(), Code: CodeInitUnsat, Severity: SevError, Confidence: ConfExact,
			Msg: fmt.Sprintf("init predicate is unsatisfiable: none of the %d states is initial, so every from-init property holds vacuously", f.states),
		})
	}
	for ai := range prog.Actions {
		a := &prog.Actions[ai]
		switch {
		case f.enabled[ai] == 0:
			diags = append(diags, Diag{
				Pos: a.Guard.Position(), Code: CodeDeadGuard, Severity: SevWarning, Confidence: ConfExact,
				Msg: fmt.Sprintf("guard of action %q holds in none of the %d states; the action is dead", a.Name, f.states),
			})
			continue
		case f.enabled[ai] == f.states:
			if _, isLit := a.Guard.(*gcl.BoolLit); !isLit {
				diags = append(diags, Diag{
					Pos: a.Guard.Position(), Code: CodeTautologyGuard, Severity: SevInfo, Confidence: ConfExact,
					Msg: fmt.Sprintf("guard of action %q holds in all %d states; write the literal `true`", a.Name, f.states),
				})
			}
		}
		for asi, as := range a.Assigns {
			if c := f.escapes[ai].count[asi]; c > 0 {
				w := f.escapes[ai].witness[asi]
				diags = append(diags, Diag{
					Pos: as.Pos, Code: CodeDomainEscape, Severity: SevError, Confidence: ConfExact,
					Msg: fmt.Sprintf("assignment to %q leaves its domain %s in %d of %d enabled states",
						as.Name, domainString(prog.Vars[identIndex(prog, as.Name)]), c, f.enabled[ai]),
					Related: []Related{{Pos: as.Pos, Msg: "witness state " + state(w)}},
				})
			}
		}
		if f.stutters[ai] {
			diags = append(diags, Diag{
				Pos: a.Pos, Code: CodeStutterAction, Severity: SevWarning, Confidence: ConfExact,
				Msg: fmt.Sprintf("action %q stutters in all %d states where it is enabled (τ self-loop)", a.Name, f.enabled[ai]),
			})
		}
		if prog.Init != nil && f.reachEnab[ai] == 0 {
			diags = append(diags, Diag{
				Pos: a.Pos, Code: CodeUnreachableAction, Severity: SevWarning, Confidence: ConfExact,
				Msg: fmt.Sprintf("action %q is enabled in %d states, none of them reachable from init", a.Name, f.enabled[ai]),
			})
		}
	}
	for key, o := range f.overlaps {
		ai, aj := &prog.Actions[key[0]], &prog.Actions[key[1]]
		diags = append(diags, Diag{
			Pos: aj.Pos, Code: CodeOverlappingGuards, Severity: SevInfo, Confidence: ConfExact,
			Msg: fmt.Sprintf("actions %q and %q are co-enabled with different successors in %d states (e.g. %s); the daemon's choice is observable",
				ai.Name, aj.Name, o.count, state(o.witness)),
			Related: []Related{{Pos: ai.Pos, Msg: fmt.Sprintf("action %q declared here", ai.Name)}},
		})
	}
	return diags
}

// mergeExact reconciles the interval tier's diagnostics with the
// exact tier's. Codes the exact tier decides completely (dead guards,
// tautologies, escapes, stutters, init, overlap, reachability) are
// replaced wholesale by the exact findings; interval "may escape"
// warnings that enumeration did not confirm are downgraded to infos
// rather than silently dropped, preserving the hint that the abstract
// domain lost precision there. Purely syntactic or abstract-only
// findings (unused variables, constant conditions) pass through.
func mergeExact(approx, exact []Diag) []Diag {
	decided := map[Code]bool{
		CodeDeadGuard: true, CodeTautologyGuard: true, CodeDomainEscape: true,
		CodeUnreachableAction: true, CodeOverlappingGuards: true,
		CodeStutterAction: true, CodeInitUnsat: true,
	}
	confirmed := make(map[string]bool, len(exact))
	for _, d := range exact {
		confirmed[string(d.Code)+"@"+d.Pos.String()] = true
	}
	out := make([]Diag, 0, len(exact)+len(approx))
	out = append(out, exact...)
	for _, d := range approx {
		if !decided[d.Code] {
			out = append(out, d)
			continue
		}
		if d.Code == CodeDomainEscape && !confirmed[string(d.Code)+"@"+d.Pos.String()] {
			d.Severity = SevInfo
			d.Confidence = ConfExact
			d.Msg += "; enumeration found no state where the value escapes"
			out = append(out, d)
		}
	}
	return out
}
