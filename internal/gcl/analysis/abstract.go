package analysis

import (
	"repro/internal/gcl"
)

// env is the abstract state: one interval per declared variable, in
// source units (range variables span [Lo, Hi]; booleans span [0, 1]).
type env []Interval

// declaredEnv is the top abstract state: every variable anywhere in
// its declared domain.
func declaredEnv(p *gcl.Program) env {
	e := make(env, len(p.Vars))
	for i, v := range p.Vars {
		if v.IsBool {
			e[i] = ivBool
		} else {
			e[i] = Interval{v.Lo, v.Hi}
		}
	}
	return e
}

func (e env) clone() env { return append(env(nil), e...) }

// evalExpr evaluates a checked expression over the interval domain.
// The result over-approximates the expression's concrete value set
// across all states described by e; boolean results embed in [0, 1].
// An empty result means concrete evaluation yields no value (it
// errors, e.g. division by a divisor that can only be zero).
func evalExpr(p *gcl.Program, ex gcl.Expr, e env) Interval {
	switch ex := ex.(type) {
	case *gcl.IntLit:
		return Single(sat(ex.Value))
	case *gcl.BoolLit:
		if ex.Value {
			return ivTrue
		}
		return ivFalse
	case *gcl.Ident:
		return e[ex.Index]
	case *gcl.Unary:
		x := evalExpr(p, ex.X, e)
		if ex.Op == gcl.KindNot {
			return boolNot(x)
		}
		return x.Neg()
	case *gcl.Cond:
		c := evalExpr(p, ex.C, e)
		switch c {
		case ivTrue:
			return evalExpr(p, ex.X, e)
		case ivFalse:
			return evalExpr(p, ex.Y, e)
		default:
			if c.IsEmpty() {
				return ivEmpty
			}
			return evalExpr(p, ex.X, e).Join(evalExpr(p, ex.Y, e))
		}
	case *gcl.Binary:
		x := evalExpr(p, ex.X, e)
		// Mirror the concrete evaluator's short-circuiting: when the left
		// operand decides the result, the right operand is never
		// evaluated concretely, so its abstract value must not matter.
		switch ex.Op {
		case gcl.KindAnd:
			if x == ivFalse {
				return ivFalse
			}
			return boolAnd(x, evalExpr(p, ex.Y, e))
		case gcl.KindOr:
			if x == ivTrue {
				return ivTrue
			}
			return boolOr(x, evalExpr(p, ex.Y, e))
		}
		y := evalExpr(p, ex.Y, e)
		switch ex.Op {
		case gcl.KindPlus:
			return x.Add(y)
		case gcl.KindMinus:
			return x.Sub(y)
		case gcl.KindStar:
			return x.Mul(y)
		case gcl.KindSlash:
			return x.Div(y)
		case gcl.KindPercent:
			return x.Mod(y)
		case gcl.KindEq:
			return x.Eq(y)
		case gcl.KindNeq:
			return boolNot(x.Eq(y))
		case gcl.KindLt:
			return x.Lt(y)
		case gcl.KindLe:
			return x.Le(y)
		case gcl.KindGt:
			return y.Lt(x)
		case gcl.KindGe:
			return y.Le(x)
		default:
			return ivBool
		}
	default:
		// Unknown node: no claim either way.
		return Interval{-satLimit, satLimit}
	}
}

// refineByGuard narrows the abstract state under the assumption that
// the guard holds, propagating conjuncts of the recognizable shapes
// (x ⋈ const, const ⋈ x, bare booleans and their negations). It
// returns ok = false when the constraints are contradictory — an
// abstract proof that the guard is unsatisfiable.
func refineByGuard(p *gcl.Program, guard gcl.Expr, e env) (env, bool) {
	out := e.clone()
	if !refineInto(p, guard, out) {
		return out, false
	}
	return out, true
}

func refineInto(p *gcl.Program, guard gcl.Expr, e env) bool {
	switch g := guard.(type) {
	case *gcl.Ident:
		if g.Type() == gcl.TypeBool {
			return narrow(e, g.Index, ivTrue)
		}
	case *gcl.Unary:
		if g.Op == gcl.KindNot {
			if id, isIdent := g.X.(*gcl.Ident); isIdent && id.Type() == gcl.TypeBool {
				return narrow(e, id.Index, ivFalse)
			}
		}
	case *gcl.Binary:
		switch g.Op {
		case gcl.KindAnd:
			return refineInto(p, g.X, e) && refineInto(p, g.Y, e)
		case gcl.KindEq, gcl.KindNeq, gcl.KindLt, gcl.KindLe, gcl.KindGt, gcl.KindGe:
			// One side a variable, the other a constant under e.
			if id, isIdent := g.X.(*gcl.Ident); isIdent {
				if c := evalExpr(p, g.Y, e); c.IsSingle() {
					return narrow(e, id.Index, constraintRange(g.Op, c.Lo, e[id.Index], false))
				}
			}
			if id, isIdent := g.Y.(*gcl.Ident); isIdent {
				if c := evalExpr(p, g.X, e); c.IsSingle() {
					return narrow(e, id.Index, constraintRange(g.Op, c.Lo, e[id.Index], true))
				}
			}
		}
	}
	// Unrecognized shape: no refinement, but the guard may still hold.
	return true
}

// constraintRange is the interval of variable values satisfying
// "x op c" (or "c op x" when mirrored is true), relative to the
// variable's current interval cur (needed for != at an endpoint).
func constraintRange(op gcl.TokenKind, c int, cur Interval, mirrored bool) Interval {
	if mirrored {
		// c op x  ⇒  x op' c with the comparison flipped.
		switch op {
		case gcl.KindLt:
			op = gcl.KindGt
		case gcl.KindLe:
			op = gcl.KindGe
		case gcl.KindGt:
			op = gcl.KindLt
		case gcl.KindGe:
			op = gcl.KindLe
		}
	}
	switch op {
	case gcl.KindEq:
		return Single(c)
	case gcl.KindNeq:
		switch {
		case cur.IsSingle() && cur.Lo == c:
			return ivEmpty
		case cur.Lo == c:
			return Interval{c + 1, cur.Hi}
		case cur.Hi == c:
			return Interval{cur.Lo, c - 1}
		default:
			return cur
		}
	case gcl.KindLt:
		return Interval{cur.Lo, c - 1}
	case gcl.KindLe:
		return Interval{cur.Lo, c}
	case gcl.KindGt:
		return Interval{c + 1, cur.Hi}
	case gcl.KindGe:
		return Interval{c, cur.Hi}
	default:
		return cur
	}
}

// narrow intersects variable vi with iv; false means the variable has
// no possible value left (contradiction).
func narrow(e env, vi int, iv Interval) bool {
	e[vi] = e[vi].Intersect(iv)
	return !e[vi].IsEmpty()
}

// walkExpr visits every node of an expression tree, parents before
// children.
func walkExpr(ex gcl.Expr, visit func(gcl.Expr)) {
	if ex == nil {
		return
	}
	visit(ex)
	switch ex := ex.(type) {
	case *gcl.Unary:
		walkExpr(ex.X, visit)
	case *gcl.Binary:
		walkExpr(ex.X, visit)
		walkExpr(ex.Y, visit)
	case *gcl.Cond:
		walkExpr(ex.C, visit)
		walkExpr(ex.X, visit)
		walkExpr(ex.Y, visit)
	}
}
