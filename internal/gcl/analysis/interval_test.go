package analysis

import (
	"testing"
)

func TestIntervalBasics(t *testing.T) {
	if !ivEmpty.IsEmpty() {
		t.Fatal("ivEmpty not empty")
	}
	if Single(3) != (Interval{3, 3}) || !Single(3).IsSingle() {
		t.Fatal("Single broken")
	}
	if got := (Interval{0, 4}).Intersect(Interval{2, 9}); got != (Interval{2, 4}) {
		t.Fatalf("Intersect: %v", got)
	}
	if got := (Interval{0, 1}).Join(Interval{5, 6}); got != (Interval{0, 6}) {
		t.Fatalf("Join: %v", got)
	}
	if got := ivEmpty.Join(Single(2)); got != Single(2) {
		t.Fatalf("Join with empty: %v", got)
	}
	if !(Interval{0, 2}).Within(Interval{0, 3}) || (Interval{0, 4}).Within(Interval{0, 3}) {
		t.Fatal("Within broken")
	}
	if !(Interval{0, 1}).Disjoint(Interval{2, 3}) || (Interval{0, 2}).Disjoint(Interval{2, 3}) {
		t.Fatal("Disjoint broken")
	}
}

// TestIntervalOpsTable pins exact results for the arithmetic
// operators over bounded domains, including division and modulo by
// intervals containing zero.
func TestIntervalOpsTable(t *testing.T) {
	cases := []struct {
		name string
		op   func(a, b Interval) Interval
		a, b Interval
		want Interval
	}{
		{"add", Interval.Add, Interval{0, 3}, Interval{-2, 2}, Interval{-2, 5}},
		{"add-empty", Interval.Add, ivEmpty, Interval{0, 1}, ivEmpty},
		{"sub", Interval.Sub, Interval{0, 3}, Interval{1, 2}, Interval{-2, 2}},
		{"mul-pos", Interval.Mul, Interval{2, 3}, Interval{4, 5}, Interval{8, 15}},
		{"mul-mixed", Interval.Mul, Interval{-2, 3}, Interval{-4, 5}, Interval{-12, 15}},
		{"mul-zero", Interval.Mul, Interval{0, 0}, Interval{-9, 9}, Interval{0, 0}},
		{"div-pos", Interval.Div, Interval{4, 9}, Interval{2, 3}, Interval{1, 4}},
		{"div-by-zero-only", Interval.Div, Interval{1, 5}, Interval{0, 0}, ivEmpty},
		{"div-zero-straddle", Interval.Div, Interval{6, 6}, Interval{-2, 3}, Interval{-6, 6}},
		{"div-neg", Interval.Div, Interval{-7, -3}, Interval{2, 2}, Interval{-4, -2}},
		{"mod-pos", Interval.Mod, Interval{-5, 5}, Interval{3, 3}, Interval{0, 2}},
		{"mod-zero-straddle", Interval.Mod, Interval{0, 9}, Interval{-2, 4}, Interval{-1, 3}},
		{"mod-by-zero-only", Interval.Mod, Interval{1, 5}, Interval{0, 0}, ivEmpty},
		{"mod-identity", Interval.Mod, Interval{0, 2}, Interval{5, 5}, Interval{0, 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.op(tc.a, tc.b); got != tc.want {
				t.Fatalf("%s(%v, %v) = %v, want %v", tc.name, tc.a, tc.b, got, tc.want)
			}
		})
	}
}

func TestIntervalComparisons(t *testing.T) {
	cases := []struct {
		name string
		op   func(a, b Interval) Interval
		a, b Interval
		want Interval
	}{
		{"lt-true", Interval.Lt, Interval{0, 2}, Interval{3, 5}, ivTrue},
		{"lt-false", Interval.Lt, Interval{5, 9}, Interval{0, 5}, ivFalse},
		{"lt-unknown", Interval.Lt, Interval{0, 5}, Interval{3, 4}, ivBool},
		{"le-true", Interval.Le, Interval{0, 3}, Interval{3, 5}, ivTrue},
		{"eq-true", Interval.Eq, Single(4), Single(4), ivTrue},
		{"eq-false", Interval.Eq, Interval{0, 2}, Interval{3, 7}, ivFalse},
		{"eq-unknown", Interval.Eq, Interval{0, 2}, Interval{2, 7}, ivBool},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.op(tc.a, tc.b); got != tc.want {
				t.Fatalf("%s(%v, %v) = %v, want %v", tc.name, tc.a, tc.b, got, tc.want)
			}
		})
	}
}

func TestBoolConnectives(t *testing.T) {
	if boolNot(ivTrue) != ivFalse || boolNot(ivFalse) != ivTrue || boolNot(ivBool) != ivBool {
		t.Fatal("boolNot broken")
	}
	if boolAnd(ivTrue, ivBool) != ivBool || boolAnd(ivFalse, ivBool) != ivFalse || boolAnd(ivTrue, ivTrue) != ivTrue {
		t.Fatal("boolAnd broken")
	}
	if boolOr(ivTrue, ivBool) != ivTrue || boolOr(ivFalse, ivFalse) != ivFalse || boolOr(ivBool, ivFalse) != ivBool {
		t.Fatal("boolOr broken")
	}
}

// TestIntervalSoundness is the property the whole analyzer leans on:
// for every operator, the abstract result contains every concrete
// result of operand values drawn from the operand intervals. It
// brute-forces all pairs over a grid of small intervals.
func TestIntervalSoundness(t *testing.T) {
	grid := []Interval{
		{0, 0}, {1, 1}, {-1, -1}, {0, 3}, {-3, 3}, {-5, -2}, {2, 7}, {-1, 1}, {0, 1},
	}
	type op struct {
		name     string
		abstract func(a, b Interval) Interval
		concrete func(x, y int) (int, bool) // ok = false means "no value" (errors)
	}
	ops := []op{
		{"add", Interval.Add, func(x, y int) (int, bool) { return x + y, true }},
		{"sub", Interval.Sub, func(x, y int) (int, bool) { return x - y, true }},
		{"mul", Interval.Mul, func(x, y int) (int, bool) { return x * y, true }},
		{"div", Interval.Div, func(x, y int) (int, bool) {
			if y == 0 {
				return 0, false
			}
			return floorDiv(x, y), true
		}},
		{"mod", Interval.Mod, func(x, y int) (int, bool) {
			if y == 0 {
				return 0, false
			}
			return floorMod(x, y), true
		}},
		{"lt", Interval.Lt, func(x, y int) (int, bool) { return b2i(x < y), true }},
		{"le", Interval.Le, func(x, y int) (int, bool) { return b2i(x <= y), true }},
		{"eq", Interval.Eq, func(x, y int) (int, bool) { return b2i(x == y), true }},
	}
	for _, o := range ops {
		for _, a := range grid {
			for _, b := range grid {
				abs := o.abstract(a, b)
				for x := a.Lo; x <= a.Hi; x++ {
					for y := b.Lo; y <= b.Hi; y++ {
						v, ok := o.concrete(x, y)
						if !ok {
							continue
						}
						if !abs.Contains(v) {
							t.Fatalf("%s: %v op %v = %v, but concrete %d op %d = %d escapes",
								o.name, a, b, abs, x, y, v)
						}
					}
				}
			}
		}
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestSaturationNoOverflow(t *testing.T) {
	huge := Interval{satLimit, satLimit}
	got := huge.Mul(huge) // would overflow without saturation
	if got.Hi != satLimit {
		t.Fatalf("Mul saturation: %v", got)
	}
	got = huge.Add(huge)
	if got.Hi != satLimit {
		t.Fatalf("Add saturation: %v", got)
	}
	neg := Interval{-satLimit, -satLimit}
	if got := neg.Mul(huge); got.Lo != -satLimit {
		t.Fatalf("Mul mixed saturation: %v", got)
	}
	if got := neg.Sub(huge); got.Lo != -satLimit {
		t.Fatalf("Sub saturation: %v", got)
	}
}
