package analysis

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/gcl"
)

// mustAnalyze parses, checks, and analyzes a source at the interval
// tier only (tests of the exact tier opt in explicitly).
func mustAnalyze(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	prog, err := gcl.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Analyze(prog, opts)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return res
}

func codesOf(diags []Diag) []Code {
	out := make([]Code, len(diags))
	for i, d := range diags {
		out[i] = d.Code
	}
	return out
}

func hasCode(diags []Diag, c Code) bool {
	for _, d := range diags {
		if d.Code == c {
			return true
		}
	}
	return false
}

func findCode(t *testing.T, diags []Diag, c Code) Diag {
	t.Helper()
	for _, d := range diags {
		if d.Code == c {
			return d
		}
	}
	t.Fatalf("no %s diagnostic in %v", c, diags)
	return Diag{}
}

func TestDeadGuardInterval(t *testing.T) {
	res := mustAnalyze(t, `
var x : 0..3;
action dead: x > 5 -> x := 0;
action live: x < 3 -> x := x + 1;
`, Options{})
	d := findCode(t, res.Diags, CodeDeadGuard)
	if d.Confidence != ConfApprox || d.Severity != SevWarning {
		t.Fatalf("diag: %+v", d)
	}
	if d.Pos.Line != 3 {
		t.Fatalf("position: %v", d.Pos)
	}
	if !strings.Contains(d.Msg, "dead") {
		t.Fatalf("msg: %s", d.Msg)
	}
	// The live action must not be flagged.
	for _, d := range res.Diags {
		if d.Pos.Line == 4 {
			t.Fatalf("live action flagged: %v", d)
		}
	}
}

// TestDeadGuardViaRefinement needs constraint propagation, not plain
// interval evaluation: each conjunct is satisfiable, their meet is
// not.
func TestDeadGuardViaRefinement(t *testing.T) {
	res := mustAnalyze(t, `
var x : 0..9;
action dead: x < 3 && x > 6 -> x := 0;
`, Options{})
	if !hasCode(res.Diags, CodeDeadGuard) {
		t.Fatalf("contradictory conjuncts not flagged: %v", res.Diags)
	}
}

func TestTautologyGuard(t *testing.T) {
	res := mustAnalyze(t, `
var x : 0..3;
action always: x >= 0 -> x := (x + 1) % 4;
action honest: true -> x := (x + 1) % 4;
`, Options{})
	d := findCode(t, res.Diags, CodeTautologyGuard)
	if d.Pos.Line != 3 || d.Severity != SevInfo {
		t.Fatalf("diag: %+v", d)
	}
	n := 0
	for _, dd := range res.Diags {
		if dd.Code == CodeTautologyGuard {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("the literal `true` guard must not be flagged: %v", res.Diags)
	}
}

func TestDomainEscape(t *testing.T) {
	res := mustAnalyze(t, `
var x : 0..3;
action over: x == 3 -> x := x + 10;
action maybe: true -> x := x * 2;
action fine: x < 3 -> x := x + 1;
`, Options{})
	var definite, may *Diag
	for i := range res.Diags {
		if res.Diags[i].Code != CodeDomainEscape {
			continue
		}
		switch res.Diags[i].Pos.Line {
		case 3:
			definite = &res.Diags[i]
		case 4:
			may = &res.Diags[i]
		case 5:
			t.Fatalf("in-domain assignment flagged: %v", res.Diags[i])
		}
	}
	if definite == nil || definite.Severity != SevError || !strings.Contains(definite.Msg, "always leaves") {
		t.Fatalf("definite escape: %+v", definite)
	}
	if may == nil || may.Severity != SevWarning || !strings.Contains(may.Msg, "may leave") {
		t.Fatalf("may escape: %+v", may)
	}
}

func TestUnusedAndWriteOnlyVars(t *testing.T) {
	res := mustAnalyze(t, `
var x : 0..3;
var sink : 0..7;
var ghost : bool;
action go: x < 3 -> x := x + 1; sink := x;
`, Options{})
	unused := findCode(t, res.Diags, CodeUnusedVar)
	if unused.Pos.Line != 4 || !strings.Contains(unused.Msg, "ghost") {
		t.Fatalf("unused: %+v", unused)
	}
	wo := findCode(t, res.Diags, CodeWriteOnlyVar)
	if wo.Pos.Line != 3 || !strings.Contains(wo.Msg, "sink") || len(wo.Related) != 1 {
		t.Fatalf("write-only: %+v", wo)
	}
	if wo.Confidence != ConfExact {
		t.Fatalf("var facts are syntactic and exact: %+v", wo)
	}
}

func TestVarReadOnlyInInitIsUsed(t *testing.T) {
	res := mustAnalyze(t, `
var x : 0..3;
var pinned : 0..3;
init pinned == 0;
action go: x < 3 -> x := x + 1;
`, Options{})
	if hasCode(res.Diags, CodeUnusedVar) || hasCode(res.Diags, CodeWriteOnlyVar) {
		t.Fatalf("init-read variable flagged: %v", res.Diags)
	}
}

func TestStutterAction(t *testing.T) {
	res := mustAnalyze(t, `
var x : 0..3;
var b : bool;
action syntactic: x < 3 -> x := x;
action pinned: x == 1 -> x := 1;
action boolpin: b -> b := true;
action real: x < 3 -> x := x + 1;
`, Options{})
	lines := map[int]bool{}
	for _, d := range res.Diags {
		if d.Code == CodeStutterAction {
			lines[d.Pos.Line] = true
		}
	}
	for _, want := range []int{4, 5, 6} {
		if !lines[want] {
			t.Fatalf("stutter at line %d not flagged: %v", want, res.Diags)
		}
	}
	if lines[7] {
		t.Fatalf("real action flagged as stutter: %v", res.Diags)
	}
}

func TestInitUnsat(t *testing.T) {
	res := mustAnalyze(t, `
var x : 0..3;
init x > 7;
action go: x < 3 -> x := x + 1;
`, Options{})
	d := findCode(t, res.Diags, CodeInitUnsat)
	if d.Severity != SevError || d.Pos.Line != 3 {
		t.Fatalf("init diag: %+v", d)
	}

	clean := mustAnalyze(t, "var x : 0..3;\ninit x == 0;\naction g: x < 3 -> x := x + 1;", Options{})
	if hasCode(clean.Diags, CodeInitUnsat) {
		t.Fatalf("satisfiable init flagged: %v", clean.Diags)
	}
}

func TestConstCond(t *testing.T) {
	res := mustAnalyze(t, `
var x : 0..3;
action a: x < 2 && x >= 0 -> x := (x <= 9) ? x + 1 : 0;
`, Options{})
	n := 0
	for _, d := range res.Diags {
		if d.Code == CodeConstCond {
			n++
			if d.Severity != SevInfo {
				t.Fatalf("constcond severity: %+v", d)
			}
		}
	}
	// Two findings: the comparison x >= 0 inside the guard and the
	// ternary condition x <= 9 in the assignment.
	if n != 2 {
		t.Fatalf("want 2 constant conditions, got %d: %v", n, res.Diags)
	}

	// The whole guard being constant is GCL002's business, not GCL010's.
	whole := mustAnalyze(t, "var x : 0..3;\naction a: x >= 0 -> x := (x + 1) % 4;", Options{})
	if hasCode(whole.Diags, CodeConstCond) {
		t.Fatalf("whole guard double-flagged: %v", whole.Diags)
	}
}

func TestOverlapIntervalTier(t *testing.T) {
	res := mustAnalyze(t, `
var x : 0..3;
action a: x >= 0 -> x := (x + 1) % 4;
action b: x <= 3 -> x := 0;
`, Options{})
	d := findCode(t, res.Diags, CodeOverlappingGuards)
	if len(d.Related) != 1 {
		t.Fatalf("overlap related: %+v", d)
	}
}

func TestDiagsSortedAndStable(t *testing.T) {
	res := mustAnalyze(t, `
var ghost : bool;
var x : 0..3;
action dead: x > 9 -> x := 0;
action over: x == 3 -> x := 17;
`, Options{})
	for i := 1; i < len(res.Diags); i++ {
		a, b := res.Diags[i-1], res.Diags[i]
		if a.Pos.Line > b.Pos.Line || (a.Pos.Line == b.Pos.Line && a.Pos.Col > b.Pos.Col) {
			t.Fatalf("diags not sorted: %v before %v", a, b)
		}
	}
}

func TestAnalyzeChecksProgram(t *testing.T) {
	prog, err := gcl.Parse("var x : 0..3;\naction a: x -> x := 1;") // int guard: type error
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(prog, Options{}); err == nil {
		t.Fatal("type-broken program analyzed without error")
	}
}

func TestAnalyzeRestrictedRegistry(t *testing.T) {
	var vars *Analyzer
	for _, a := range Analyzers() {
		if a.Name == "vars" {
			vars = a
		}
	}
	res := mustAnalyze(t, `
var ghost : bool;
var x : 0..3;
action dead: x > 9 -> x := 0;
`, Options{Analyzers: []*Analyzer{vars}})
	if got := codesOf(res.Diags); len(got) != 1 || got[0] != CodeUnusedVar {
		t.Fatalf("restricted run: %v", got)
	}
}

func TestVersionCoversRegistry(t *testing.T) {
	v := Version()
	for _, a := range Analyzers() {
		if !strings.Contains(v, a.Name) {
			t.Fatalf("Version() %q omits analyzer %q", v, a.Name)
		}
	}
}

func TestDiagJSONShape(t *testing.T) {
	d := Diag{
		Pos: gcl.Pos{Line: 3, Col: 8}, Code: CodeDeadGuard, Severity: SevWarning,
		Confidence: ConfExact, Msg: "m",
		Related: []Related{{Pos: gcl.Pos{Line: 1, Col: 2}, Msg: "r"}},
	}
	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m["line"] != float64(3) || m["col"] != float64(8) || m["code"] != "GCL001" ||
		m["severity"] != "warning" || m["confidence"] != "exact" {
		t.Fatalf("JSON shape: %s", raw)
	}
	rel := m["related"].([]any)[0].(map[string]any)
	if rel["line"] != float64(1) || rel["msg"] != "r" {
		t.Fatalf("related shape: %s", raw)
	}
}

func TestSortDedup(t *testing.T) {
	pos := gcl.Pos{Line: 2, Col: 1}
	in := []Diag{
		{Pos: pos, Code: CodeDeadGuard, Msg: "m", Confidence: ConfApprox},
		{Pos: gcl.Pos{Line: 1, Col: 1}, Code: CodeUnusedVar, Msg: "u"},
		{Pos: pos, Code: CodeDeadGuard, Msg: "m", Confidence: ConfExact},
	}
	out := Sort(in)
	if len(out) != 2 {
		t.Fatalf("dedup: %v", out)
	}
	if out[0].Code != CodeUnusedVar || out[1].Code != CodeDeadGuard {
		t.Fatalf("order: %v", out)
	}
	if out[1].Confidence != ConfExact {
		t.Fatalf("dedup must keep the stronger confidence: %v", out[1])
	}
}

func TestErrorCount(t *testing.T) {
	diags := []Diag{
		{Severity: SevError}, {Severity: SevWarning}, {Severity: SevError}, {Severity: SevInfo},
	}
	if got := ErrorCount(diags); got != 2 {
		t.Fatalf("ErrorCount = %d", got)
	}
}
