package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/gcl"
)

// Pass carries the shared, precomputed context every analyzer reads:
// the checked program and its top abstract state. Analyzers are
// independent — each returns its own diagnostics and never mutates
// the pass.
type Pass struct {
	Prog *gcl.Program
	// Top is the abstract state induced by the declarations alone.
	Top env

	guards []guardState // lazily computed, shared by the analyzers
}

// Analyzer is one registered check over a checked program.
type Analyzer struct {
	// Name is a short stable identifier (also part of Version).
	Name string
	// Doc is a one-line description.
	Doc string
	// Codes lists the diagnostic codes the analyzer can emit.
	Codes []Code
	// Run produces the analyzer's diagnostics.
	Run func(p *Pass) []Diag
}

// Analyzers returns the registry of interval-tier analyzers, in a
// stable order. The exact tier (exact.go) is not an Analyzer: it
// post-processes the whole diagnostic set against an enumeration of
// the state space.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		{
			Name:  "guards",
			Doc:   "unsatisfiable (dead) and tautological guards",
			Codes: []Code{CodeDeadGuard, CodeTautologyGuard},
			Run:   runGuards,
		},
		{
			Name:  "domains",
			Doc:   "assignments whose value can leave the target's declared domain",
			Codes: []Code{CodeDomainEscape},
			Run:   runDomains,
		},
		{
			Name:  "vars",
			Doc:   "unused and write-only variables",
			Codes: []Code{CodeUnusedVar, CodeWriteOnlyVar},
			Run:   runVars,
		},
		{
			Name:  "stutter",
			Doc:   "actions whose every assignment provably rewrites the current value",
			Codes: []Code{CodeStutterAction},
			Run:   runStutter,
		},
		{
			Name:  "overlap",
			Doc:   "guard pairs that are provably co-enabled",
			Codes: []Code{CodeOverlappingGuards},
			Run:   runOverlap,
		},
		{
			Name:  "init",
			Doc:   "unsatisfiable init predicates",
			Codes: []Code{CodeInitUnsat},
			Run:   runInit,
		},
		{
			Name:  "constcond",
			Doc:   "condition subexpressions that are constant over the declared domains",
			Codes: []Code{CodeConstCond},
			Run:   runConstCond,
		},
		{
			Name:  "reachable",
			Doc:   "actions whose guard is satisfiable but statically unreachable from init",
			Codes: []Code{CodeUnreachableStatic},
			Run:   runReachable,
		},
	}
}

// Version identifies the analyzer set for cache keying: the engine
// revision plus every registered analyzer name. Adding, removing, or
// renaming an analyzer changes the version, so cached lint verdicts
// from an older engine are never served for a newer one.
func Version() string {
	names := make([]string, 0, 8)
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return "v1/" + strings.Join(names, ",")
}

// guardState classifies one action's guard under the interval tier.
type guardState struct {
	// val is the guard's abstract value over the top state.
	val Interval
	// refined is the top state narrowed by the guard's recognizable
	// conjuncts; meaningful only when sat is true.
	refined env
	// sat is false when refinement proved the guard contradictory.
	sat bool
}

func (p *Pass) guardStates() []guardState {
	if p.guards == nil {
		p.guards = make([]guardState, len(p.Prog.Actions))
		for i := range p.Prog.Actions {
			a := &p.Prog.Actions[i]
			refined, sat := refineByGuard(p.Prog, a.Guard, p.Top)
			p.guards[i] = guardState{val: evalExpr(p.Prog, a.Guard, p.Top), refined: refined, sat: sat}
		}
	}
	return p.guards
}

// deadGuard reports whether the interval tier proves the guard never
// holds: either its abstract value is definitely false (or empty —
// evaluation always errors, so it is never *true*), or constraint
// propagation emptied a variable's domain.
func (g guardState) dead() bool {
	return g.val == ivFalse || g.val.IsEmpty() || !g.sat
}

func runGuards(p *Pass) []Diag {
	var diags []Diag
	for i, g := range p.guardStates() {
		a := &p.Prog.Actions[i]
		switch {
		case g.dead():
			diags = append(diags, Diag{
				Pos: a.Guard.Position(), Code: CodeDeadGuard, Severity: SevWarning,
				Msg: fmt.Sprintf("guard of action %q can never hold over the declared domains; the action is dead", a.Name),
			})
		case g.val == ivTrue:
			if _, isLit := a.Guard.(*gcl.BoolLit); !isLit {
				diags = append(diags, Diag{
					Pos: a.Guard.Position(), Code: CodeTautologyGuard, Severity: SevInfo,
					Msg: fmt.Sprintf("guard of action %q is always true; write the literal `true`", a.Name),
				})
			}
		}
	}
	return diags
}

func runDomains(p *Pass) []Diag {
	var diags []Diag
	for i, g := range p.guardStates() {
		if g.dead() {
			continue // GCL001 already covers the action
		}
		a := &p.Prog.Actions[i]
		for _, as := range a.Assigns {
			vi := identIndex(p.Prog, as.Name)
			decl := p.Prog.Vars[vi]
			domain := p.Top[vi]
			rhs := evalExpr(p.Prog, as.Expr, g.refined)
			switch {
			case rhs.Disjoint(domain) && !rhs.IsEmpty():
				diags = append(diags, Diag{
					Pos: as.Pos, Code: CodeDomainEscape, Severity: SevError,
					Msg: fmt.Sprintf("assignment to %q always leaves its domain %s whenever action %q fires (value in [%d, %d])",
						as.Name, domainString(decl), a.Name, rhs.Lo, rhs.Hi),
				})
			case !rhs.Within(domain):
				diags = append(diags, Diag{
					Pos: as.Pos, Code: CodeDomainEscape, Severity: SevWarning,
					Msg: fmt.Sprintf("assignment to %q may leave its domain %s (value in [%d, %d])",
						as.Name, domainString(decl), rhs.Lo, rhs.Hi),
				})
			}
		}
	}
	return diags
}

func domainString(v gcl.VarDecl) string {
	if v.IsBool {
		return "bool"
	}
	return fmt.Sprintf("%d..%d", v.Lo, v.Hi)
}

func identIndex(p *gcl.Program, name string) int {
	for i, v := range p.Vars {
		if v.Name == name {
			return i
		}
	}
	return -1 // unreachable after Check
}

func runVars(p *Pass) []Diag {
	read := make([]bool, len(p.Prog.Vars))
	written := make([]bool, len(p.Prog.Vars))
	writeSites := make([][]gcl.Pos, len(p.Prog.Vars))
	markReads := func(ex gcl.Expr) {
		walkExpr(ex, func(n gcl.Expr) {
			if id, isIdent := n.(*gcl.Ident); isIdent {
				read[id.Index] = true
			}
		})
	}
	markReads(p.Prog.Init)
	for i := range p.Prog.Actions {
		a := &p.Prog.Actions[i]
		markReads(a.Guard)
		for _, as := range a.Assigns {
			markReads(as.Expr)
			vi := identIndex(p.Prog, as.Name)
			written[vi] = true
			writeSites[vi] = append(writeSites[vi], as.Pos)
		}
	}
	var diags []Diag
	for i, v := range p.Prog.Vars {
		switch {
		case !read[i] && !written[i]:
			diags = append(diags, Diag{
				Pos: v.Pos, Code: CodeUnusedVar, Severity: SevWarning, Confidence: ConfExact,
				Msg: fmt.Sprintf("variable %q is never read or written; it only multiplies the state space by %d", v.Name, v.Card()),
			})
		case written[i] && !read[i]:
			d := Diag{
				Pos: v.Pos, Code: CodeWriteOnlyVar, Severity: SevWarning, Confidence: ConfExact,
				Msg: fmt.Sprintf("variable %q is written but never read; its value cannot influence behavior", v.Name),
			}
			for _, pos := range writeSites[i] {
				d.Related = append(d.Related, Related{Pos: pos, Msg: fmt.Sprintf("%q written here", v.Name)})
			}
			diags = append(diags, d)
		}
	}
	return diags
}

func runStutter(p *Pass) []Diag {
	var diags []Diag
	for i, g := range p.guardStates() {
		if g.dead() {
			continue
		}
		a := &p.Prog.Actions[i]
		identity := true
		for _, as := range a.Assigns {
			if !provablyIdentity(p.Prog, as, g.refined) {
				identity = false
				break
			}
		}
		if identity {
			diags = append(diags, Diag{
				Pos: a.Pos, Code: CodeStutterAction, Severity: SevWarning,
				Msg: fmt.Sprintf("action %q provably stutters: every assignment rewrites the current value (τ self-loop)", a.Name),
			})
		}
	}
	return diags
}

// provablyIdentity reports whether the assignment cannot change its
// target in any state satisfying the (refined) guard: either it is
// the syntactic x := x, or the guard pins the target to a single
// value that the right-hand side always produces.
func provablyIdentity(p *gcl.Program, as gcl.Assign, e env) bool {
	vi := identIndex(p, as.Name)
	if id, isIdent := as.Expr.(*gcl.Ident); isIdent && id.Index == vi {
		return true
	}
	cur := e[vi]
	rhs := evalExpr(p, as.Expr, e)
	return cur.IsSingle() && rhs.IsSingle() && cur.Lo == rhs.Lo
}

func runOverlap(p *Pass) []Diag {
	// The interval tier only proves co-enabledness when both guards are
	// tautologies; the interesting overlaps come from the exact tier.
	var diags []Diag
	states := p.guardStates()
	for i := 0; i < len(states); i++ {
		for j := i + 1; j < len(states); j++ {
			if states[i].val == ivTrue && states[j].val == ivTrue {
				ai, aj := &p.Prog.Actions[i], &p.Prog.Actions[j]
				diags = append(diags, Diag{
					Pos: aj.Pos, Code: CodeOverlappingGuards, Severity: SevInfo,
					Msg:     fmt.Sprintf("actions %q and %q are both enabled in every state; the daemon chooses nondeterministically", ai.Name, aj.Name),
					Related: []Related{{Pos: ai.Pos, Msg: fmt.Sprintf("action %q declared here", ai.Name)}},
				})
			}
		}
	}
	return diags
}

func runInit(p *Pass) []Diag {
	if p.Prog.Init == nil {
		return nil
	}
	v := evalExpr(p.Prog, p.Prog.Init, p.Top)
	_, sat := refineByGuard(p.Prog, p.Prog.Init, p.Top)
	if v == ivFalse || v.IsEmpty() || !sat {
		return []Diag{{
			Pos: p.Prog.Init.Position(), Code: CodeInitUnsat, Severity: SevError,
			Msg: "init predicate is unsatisfiable: the program has no initial states, so every from-init property holds vacuously",
		}}
	}
	return nil
}

func runConstCond(p *Pass) []Diag {
	var diags []Diag
	flag := func(pos gcl.Pos, what string, v Interval) {
		if v != ivTrue && v != ivFalse {
			return
		}
		truth := "true"
		if v == ivFalse {
			truth = "false"
		}
		diags = append(diags, Diag{
			Pos: pos, Code: CodeConstCond, Severity: SevInfo,
			Msg: fmt.Sprintf("%s is always %s over the declared domains", what, truth),
		})
	}
	// Comparison subexpressions strictly inside guards and init (a
	// constant *whole* guard is GCL001/GCL002's business).
	scanComparisons := func(root gcl.Expr) {
		walkExpr(root, func(n gcl.Expr) {
			if n == root {
				return
			}
			if b, isBin := n.(*gcl.Binary); isBin {
				switch b.Op {
				case gcl.KindEq, gcl.KindNeq, gcl.KindLt, gcl.KindLe, gcl.KindGt, gcl.KindGe:
					flag(b.Position(), "comparison", evalExpr(p.Prog, b, p.Top))
				}
			}
		})
	}
	// Ternary conditions inside assignment right-hand sides.
	scanConds := func(root gcl.Expr) {
		walkExpr(root, func(n gcl.Expr) {
			if c, isCond := n.(*gcl.Cond); isCond {
				if _, isLit := c.C.(*gcl.BoolLit); !isLit {
					flag(c.C.Position(), "ternary condition", evalExpr(p.Prog, c.C, p.Top))
				}
			}
		})
	}
	for i := range p.Prog.Actions {
		a := &p.Prog.Actions[i]
		scanComparisons(a.Guard)
		for _, as := range a.Assigns {
			scanConds(as.Expr)
		}
	}
	scanComparisons(p.Prog.Init)
	return diags
}
