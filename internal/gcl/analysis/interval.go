package analysis

// The interval abstract domain. An Interval over-approximates the set
// of values an integer expression can take; booleans embed as
// sub-intervals of [0,1] (false = [0,0], true = [1,1], unknown =
// [0,1]), which lets one evaluator cover the whole expression
// language. The empty interval is the bottom element: "no value"
// (e.g. the result of dividing by an interval that is exactly {0},
// where concrete evaluation always errors).
//
// All claims derived from intervals respect the abstraction's
// direction: "definitely false/true/out-of-domain" statements are
// sound proofs, while the converse ("may …") statements need the
// exact enumeration tier to confirm. Bounds saturate at ±satLimit so
// nested arithmetic over adversarial literals cannot overflow; a
// saturated bound simply widens the interval, which keeps the
// abstraction sound (declared GCL domains are small, so saturation
// never fires on realistic programs).

const satLimit = 1 << 60

// Interval is the inclusive range [Lo, Hi]; Lo > Hi means empty.
type Interval struct {
	Lo, Hi int
}

// Convenient constants of the boolean embedding.
var (
	ivFalse = Single(0)
	ivTrue  = Single(1)
	ivBool  = Interval{0, 1}
	ivEmpty = Interval{1, 0}
)

// Single is the singleton interval {v}.
func Single(v int) Interval { return Interval{v, v} }

// IsEmpty reports whether the interval contains no value.
func (iv Interval) IsEmpty() bool { return iv.Lo > iv.Hi }

// IsSingle reports whether the interval is a single value.
func (iv Interval) IsSingle() bool { return iv.Lo == iv.Hi }

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v int) bool { return iv.Lo <= v && v <= iv.Hi }

// Within reports whether every value of iv lies in o. An empty iv is
// vacuously within anything.
func (iv Interval) Within(o Interval) bool {
	return iv.IsEmpty() || (o.Lo <= iv.Lo && iv.Hi <= o.Hi)
}

// Disjoint reports whether the intervals share no value.
func (iv Interval) Disjoint(o Interval) bool {
	return iv.IsEmpty() || o.IsEmpty() || iv.Hi < o.Lo || o.Hi < iv.Lo
}

// Intersect is the meet: the values in both intervals.
func (iv Interval) Intersect(o Interval) Interval {
	lo, hi := max(iv.Lo, o.Lo), min(iv.Hi, o.Hi)
	return Interval{lo, hi}
}

// Join is the convex hull: the smallest interval containing both.
func (iv Interval) Join(o Interval) Interval {
	if iv.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return iv
	}
	return Interval{min(iv.Lo, o.Lo), max(iv.Hi, o.Hi)}
}

func sat(v int) int {
	if v > satLimit {
		return satLimit
	}
	if v < -satLimit {
		return -satLimit
	}
	return v
}

// satAdd adds with saturation; operands are already within ±satLimit,
// so the int64 sum cannot wrap.
func satAdd(a, b int) int { return sat(a + b) }

// satMul multiplies with saturation, detecting overflow before it
// happens.
func satMul(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	if a > 0 && b > 0 && a > satLimit/b {
		return satLimit
	}
	if a < 0 && b < 0 && a < satLimit/b {
		return satLimit
	}
	if a > 0 && b < 0 && b < -satLimit/a {
		return -satLimit
	}
	if a < 0 && b > 0 && a < -satLimit/b {
		return -satLimit
	}
	return sat(a * b)
}

// Add is interval addition.
func (iv Interval) Add(o Interval) Interval {
	if iv.IsEmpty() || o.IsEmpty() {
		return ivEmpty
	}
	return Interval{satAdd(iv.Lo, o.Lo), satAdd(iv.Hi, o.Hi)}
}

// Sub is interval subtraction.
func (iv Interval) Sub(o Interval) Interval {
	if iv.IsEmpty() || o.IsEmpty() {
		return ivEmpty
	}
	return Interval{satAdd(iv.Lo, -o.Hi), satAdd(iv.Hi, -o.Lo)}
}

// Neg is interval negation.
func (iv Interval) Neg() Interval {
	if iv.IsEmpty() {
		return ivEmpty
	}
	return Interval{-iv.Hi, -iv.Lo}
}

// Mul is interval multiplication: the hull of the four corner
// products.
func (iv Interval) Mul(o Interval) Interval {
	if iv.IsEmpty() || o.IsEmpty() {
		return ivEmpty
	}
	p1 := satMul(iv.Lo, o.Lo)
	p2 := satMul(iv.Lo, o.Hi)
	p3 := satMul(iv.Hi, o.Lo)
	p4 := satMul(iv.Hi, o.Hi)
	return Interval{min(min(p1, p2), min(p3, p4)), max(max(p1, p2), max(p3, p4))}
}

// Div is floored interval division, considering only the divisor's
// non-zero values (concrete evaluation errors on zero, producing no
// value). For a fixed divisor floorDiv is monotone in the dividend,
// and for a fixed dividend its extremes over a divisor range occur at
// the range's endpoints or at ±1 — so the hull over those candidate
// divisors and the dividend endpoints is sound. Empty when the
// divisor can only be zero.
func (iv Interval) Div(o Interval) Interval {
	return iv.divLike(o, floorDiv)
}

// Mod is floored interval modulo. The result's sign follows the
// divisor (floorMod semantics): for positive divisors it lies in
// [0, o.Hi-1], for negative in [o.Lo+1, 0]. When the dividend already
// fits inside a known positive divisor's window the operation is the
// identity.
func (iv Interval) Mod(o Interval) Interval {
	if iv.IsEmpty() || o.IsEmpty() || (o.Lo == 0 && o.Hi == 0) {
		return ivEmpty
	}
	out := ivEmpty
	if o.Hi > 0 { // positive divisor values up to o.Hi
		part := Interval{0, o.Hi - 1}
		if iv.Lo >= 0 && iv.Hi < max(o.Lo, 1) {
			// Every positive divisor exceeds the dividend: identity.
			part = iv
		}
		out = out.Join(part)
	}
	if o.Lo < 0 { // negative divisor values down to o.Lo
		out = out.Join(Interval{o.Lo + 1, 0})
	}
	return out
}

func (iv Interval) divLike(o Interval, f func(x, y int) int) Interval {
	if iv.IsEmpty() || o.IsEmpty() {
		return ivEmpty
	}
	candidates := make([]int, 0, 4)
	for _, y := range []int{o.Lo, o.Hi, -1, 1} {
		if y != 0 && o.Contains(y) {
			candidates = append(candidates, y)
		}
	}
	if len(candidates) == 0 {
		return ivEmpty // divisor is exactly {0}
	}
	// f is monotone in x for fixed y, so the hull over x endpoints per
	// candidate divisor covers the whole range.
	out := ivEmpty
	for _, y := range candidates {
		out = out.Join(Single(sat(f(iv.Lo, y))))
		out = out.Join(Single(sat(f(iv.Hi, y))))
	}
	return out
}

// floorDiv and floorMod mirror the concrete evaluator's floored
// semantics (internal/gcl/eval.go), so abstract and concrete tiers
// agree on negative operands.
func floorDiv(x, y int) int {
	q := x / y
	if (x%y != 0) && ((x < 0) != (y < 0)) {
		q--
	}
	return q
}

func floorMod(x, y int) int {
	m := x % y
	if m != 0 && ((x < 0) != (y < 0)) {
		m += y
	}
	return m
}

// Comparison operators return boolean intervals.

// Lt is the abstract x < y.
func (iv Interval) Lt(o Interval) Interval {
	switch {
	case iv.IsEmpty() || o.IsEmpty():
		return ivEmpty
	case iv.Hi < o.Lo:
		return ivTrue
	case iv.Lo >= o.Hi:
		return ivFalse
	default:
		return ivBool
	}
}

// Le is the abstract x <= y.
func (iv Interval) Le(o Interval) Interval {
	switch {
	case iv.IsEmpty() || o.IsEmpty():
		return ivEmpty
	case iv.Hi <= o.Lo:
		return ivTrue
	case iv.Lo > o.Hi:
		return ivFalse
	default:
		return ivBool
	}
}

// Eq is the abstract x == y.
func (iv Interval) Eq(o Interval) Interval {
	switch {
	case iv.IsEmpty() || o.IsEmpty():
		return ivEmpty
	case iv.Disjoint(o):
		return ivFalse
	case iv.IsSingle() && o.IsSingle() && iv.Lo == o.Lo:
		return ivTrue
	default:
		return ivBool
	}
}

// Boolean connectives over the [0,1] embedding.

func boolNot(iv Interval) Interval {
	switch iv {
	case ivTrue:
		return ivFalse
	case ivFalse:
		return ivTrue
	default:
		if iv.IsEmpty() {
			return ivEmpty
		}
		return ivBool
	}
}

func boolAnd(a, b Interval) Interval {
	switch {
	case a.IsEmpty() || b.IsEmpty():
		return ivEmpty
	case a == ivFalse || b == ivFalse:
		return ivFalse
	case a == ivTrue && b == ivTrue:
		return ivTrue
	default:
		return ivBool
	}
}

func boolOr(a, b Interval) Interval {
	switch {
	case a.IsEmpty() || b.IsEmpty():
		return ivEmpty
	case a == ivTrue || b == ivTrue:
		return ivTrue
	case a == ivFalse && b == ivFalse:
		return ivFalse
	default:
		return ivBool
	}
}
