package analysis

import (
	"repro/internal/gcl"
	"repro/internal/mc"
)

// DefaultExactStateLimit bounds the state spaces the exact tier will
// enumerate when Options leaves ExactStateLimit zero.
const DefaultExactStateLimit = 1 << 16

// Options configures Analyze. The zero value runs every registered
// analyzer at the interval tier only.
type Options struct {
	// Analyzers restricts the run to the given analyzers; nil means all
	// registered ones.
	Analyzers []*Analyzer
	// Exact enables the enumeration tier for programs whose state space
	// is at most ExactStateLimit.
	Exact bool
	// ExactStateLimit caps the exact tier's state-space size
	// (default DefaultExactStateLimit).
	ExactStateLimit int
	// Gas meters the exact tier's sweep (nil means unlimited). When the
	// budget runs out mid-sweep the exact tier's partial results are
	// discarded and the interval tier's verdicts stand, marked approx.
	Gas *mc.Gas
}

// Result is a completed analysis.
type Result struct {
	// Diags is the sorted, deduplicated diagnostic list.
	Diags []Diag
	// States is the declared state-space size (capped at
	// ExactStateLimit+1 when larger, to avoid overflow on absurd
	// declarations).
	States int
	// Exact reports whether the enumeration tier ran to completion, in
	// which case every decidable diagnostic carries exact confidence.
	Exact bool
}

// Analyze runs the analyzer registry over a program. The program is
// (re-)checked first — Check is idempotent and resolves the
// identifier indices the abstract evaluator needs; a check failure is
// returned as the error. Budget exhaustion in the exact tier is not
// an error: the result simply stays at approx confidence.
func Analyze(prog *gcl.Program, opts Options) (*Result, error) {
	if err := gcl.Check(prog); err != nil {
		return nil, err
	}
	limit := opts.ExactStateLimit
	if limit <= 0 {
		limit = DefaultExactStateLimit
	}
	pass := &Pass{Prog: prog, Top: declaredEnv(prog)}
	analyzers := opts.Analyzers
	if analyzers == nil {
		analyzers = Analyzers()
	}
	var diags []Diag
	for _, a := range analyzers {
		diags = append(diags, a.Run(pass)...)
	}
	res := &Result{States: cardProduct(prog, limit)}
	if opts.Exact && res.States <= limit {
		if facts, err := runExact(prog, opts.Gas); err == nil {
			diags = mergeExact(diags, exactDiags(prog, facts))
			res.Exact = true
		}
	}
	res.Diags = Sort(diags)
	return res, nil
}

// cardProduct multiplies the declared cardinalities, saturating at
// cap+1 so absurd declarations cannot overflow.
func cardProduct(prog *gcl.Program, cap int) int {
	size := 1
	for _, v := range prog.Vars {
		size *= v.Card()
		if size > cap {
			return cap + 1
		}
	}
	return size
}
