package gcl

import (
	"strings"
	"testing"
)

const dijkstra3Src = `
// Dijkstra's 3-state token ring for N = 2 (three processes).
var c0 : 0..2;
var c1 : 0..2;
var c2 : 0..2;

init c0 == 0 && c1 == 0 && c2 == 1;

action bottom: c1 == (c0 + 1) % 3 -> c0 := (c1 + 1) % 3;
action mid_up: c0 == (c1 + 1) % 3 -> c1 := c0;
action mid_dn: c2 == (c1 + 1) % 3 -> c1 := c2;
action top:    c1 == c0 && (c1 + 1) % 3 != c2 -> c2 := (c1 + 1) % 3;
`

func TestParseDijkstra3(t *testing.T) {
	prog, err := Parse(dijkstra3Src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Vars) != 3 || len(prog.Actions) != 4 {
		t.Fatalf("vars=%d actions=%d", len(prog.Vars), len(prog.Actions))
	}
	if prog.Init == nil {
		t.Fatal("init missing")
	}
	if prog.Actions[0].Name != "bottom" || len(prog.Actions[0].Assigns) != 1 {
		t.Fatalf("action[0] = %+v", prog.Actions[0])
	}
	if prog.Vars[0].Card() != 3 {
		t.Fatalf("card = %d", prog.Vars[0].Card())
	}
}

func TestParseMultipleAssignments(t *testing.T) {
	src := `
var x : bool;
var y : bool;
action swap: x -> x := y; y := x;
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Actions[0].Assigns) != 2 {
		t.Fatalf("assigns = %+v", prog.Actions[0].Assigns)
	}
}

func TestParseBoolAndNegativeRange(t *testing.T) {
	prog, err := Parse("var up : bool;\nvar t : -2..2;")
	if err != nil {
		t.Fatal(err)
	}
	if !prog.Vars[0].IsBool {
		t.Fatal("up should be bool")
	}
	if prog.Vars[1].Lo != -2 || prog.Vars[1].Hi != 2 || prog.Vars[1].Card() != 5 {
		t.Fatalf("range var = %+v", prog.Vars[1])
	}
}

func TestParsePrecedence(t *testing.T) {
	prog, err := Parse("var x : 0..9;\naction a: x + 2 * 3 == 7 || x == 0 && x < 1 -> x := 0;")
	if err != nil {
		t.Fatal(err)
	}
	g, okk := prog.Actions[0].Guard.(*Binary)
	if !okk || g.Op != KindOr {
		t.Fatalf("top op = %+v", prog.Actions[0].Guard)
	}
	left, okk := g.X.(*Binary)
	if !okk || left.Op != KindEq {
		t.Fatalf("left = %v", g.X)
	}
	add, okk := left.X.(*Binary)
	if !okk || add.Op != KindPlus {
		t.Fatalf("left.X = %v", left.X)
	}
	if mul, okk := add.Y.(*Binary); !okk || mul.Op != KindStar {
		t.Fatalf("2*3 not grouped: %v", add.Y)
	}
	right, okk := g.Y.(*Binary)
	if !okk || right.Op != KindAnd {
		t.Fatalf("right = %v", g.Y)
	}
}

func TestParseUnary(t *testing.T) {
	prog, err := Parse("var b : bool;\nvar x : 0..3;\naction a: !b && -x + 3 > 0 -> b := true;")
	if err != nil {
		t.Fatal(err)
	}
	g := prog.Actions[0].Guard.(*Binary)
	if _, okk := g.X.(*Unary); !okk {
		t.Fatalf("!b not unary: %v", g.X)
	}
}

func TestParseParens(t *testing.T) {
	prog, err := Parse("var x : 0..9;\naction a: (x + 1) * 2 == 4 -> x := (x);")
	if err != nil {
		t.Fatal(err)
	}
	eq := prog.Actions[0].Guard.(*Binary)
	mul := eq.X.(*Binary)
	if mul.Op != KindStar {
		t.Fatalf("paren grouping lost: %v", eq.X)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{"", "no variables"},
		{"var x : bool", "expected ';'"},
		{"var x : 5..2;", "empty domain"},
		{"var x : bool;\nvar x : bool;", "redeclared"},
		{"var x : bool;\naction a: x -> x := true;\naction a: x -> x := false;", `action "a" redeclared`},
		{"var x : bool;\ninit x", "expected ';'"},
		{"var x : bool;\naction a x -> x := true;", "expected ':'"},
		{"var x : bool;\naction a: x x := true;", "expected '->'"},
		{"var x : bool;\naction a: x -> x = true;", "unexpected character '='"},
		{"var x : bool;\naction a: x -> y + 1;", "expected ':='"},
		{"var x : bool;\ngarbage", "expected 'var', 'init', 'action'"},
		{"var x : bool;\naction a: -> x := true;", "expected expression"},
		{"var x : bool;\naction a: (x -> x := true;", "expected ')'"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", tc.src, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("Parse(%q) error = %q, want substring %q", tc.src, err, tc.wantSub)
		}
	}
}

func TestPrintRoundTrip(t *testing.T) {
	prog, err := Parse(dijkstra3Src)
	if err != nil {
		t.Fatal(err)
	}
	printed := prog.String()
	prog2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse of printed program failed: %v\n%s", err, printed)
	}
	if prog2.String() != printed {
		t.Fatalf("printing not idempotent:\n%s\nvs\n%s", printed, prog2.String())
	}
}

func TestParseNoInitIsAllowed(t *testing.T) {
	prog, err := Parse("var x : bool;\naction a: x -> x := false;")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Init != nil {
		t.Fatal("init should be nil")
	}
}
