package gcl

import "testing"

func TestFingerprintNormalizesFormatting(t *testing.T) {
	a, err := Parse("var x : 0..2;\ninit x == 0;\naction tick: true -> x := (x + 1) % 3;\n")
	if err != nil {
		t.Fatal(err)
	}
	// Same program: extra whitespace, comments, and line breaks.
	b, err := Parse(`
// a comment
var x : 0..2;

init   x == 0;   // trailing comment
action tick:
    true -> x := (x + 1) % 3;
`)
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := Fingerprint(a), Fingerprint(b)
	if fa != fb {
		t.Fatalf("formatting changed the fingerprint:\n%s\n%s", fa, fb)
	}
	if len(fa) != 64 {
		t.Fatalf("fingerprint is not a hex SHA-256: %q", fa)
	}
}

func TestFingerprintSeparatesPrograms(t *testing.T) {
	a, err := Parse("var x : 0..2;\naction tick: true -> x := (x + 1) % 3;")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("var x : 0..3;\naction tick: true -> x := (x + 1) % 4;")
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("distinct programs share a fingerprint")
	}
}
