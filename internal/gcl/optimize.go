package gcl

import (
	"fmt"
	"reflect"
)

// This file is a miniature of the tool the paper's introduction asks for:
// a program transformer that is *certifiably* stabilization preserving.
// Optimize rewrites a guarded-command program (constant folding, boolean
// simplification, vacuous-action elimination); Certify then decides, via
// the convergence-refinement checker, that the optimized automaton
// refines the original — so by Theorem 1 every stabilization property of
// the original carries over. The transformations are not trusted: a
// transformation whose certificate fails is simply not shipped.

// Optimize returns a simplified copy of the program and notes describing
// the rewrites applied. The input must already have passed Check; the
// output passes Check again by construction (re-run by CompileProgram).
func Optimize(p *Program) (*Program, []string) {
	out := &Program{Vars: append([]VarDecl(nil), p.Vars...)}
	var notes []string
	if p.Init != nil {
		simplified := simplify(p.Init)
		if !sameExpr(simplified, p.Init) {
			notes = append(notes, "simplified init predicate")
		}
		if lit, isLit := simplified.(*BoolLit); isLit && lit.Value {
			simplified = nil
			notes = append(notes, "init predicate is a tautology: dropped")
		}
		out.Init = simplified
	}

	seen := make(map[string]bool)
	for _, a := range p.Actions {
		guard := simplify(a.Guard)
		if lit, isLit := guard.(*BoolLit); isLit && !lit.Value {
			notes = append(notes, fmt.Sprintf("action %q: guard is unsatisfiable, removed", a.Name))
			continue
		}
		assigns := make([]Assign, 0, len(a.Assigns))
		for _, as := range a.Assigns {
			assigns = append(assigns, Assign{Name: as.Name, Expr: simplify(as.Expr), Pos: as.Pos})
		}
		// Vacuous-assignment elimination: x := x.
		kept := assigns[:0]
		for _, as := range assigns {
			if id, isIdent := as.Expr.(*Ident); isIdent && id.Name == as.Name {
				notes = append(notes, fmt.Sprintf("action %q: dropped identity assignment to %q", a.Name, as.Name))
				continue
			}
			kept = append(kept, as)
		}
		if len(kept) == 0 {
			notes = append(notes, fmt.Sprintf("action %q: all assignments vacuous, action removed", a.Name))
			continue
		}
		// Structural duplicate elimination.
		key := guard.String()
		for _, as := range kept {
			key += "|" + as.Name + ":=" + as.Expr.String()
		}
		if seen[key] {
			notes = append(notes, fmt.Sprintf("action %q: duplicate of an earlier action, removed", a.Name))
			continue
		}
		seen[key] = true
		out.Actions = append(out.Actions, ActionDecl{Name: a.Name, Guard: guard, Assigns: kept, Pos: a.Pos})
	}
	return out, notes
}

// simplify rewrites an expression bottom-up: constant folding over pure
// integer/boolean operators and the usual boolean identities. It never
// changes the expression's value in any environment (division and modulo
// are folded only when the divisor is a non-zero literal).
func simplify(e Expr) Expr {
	switch e := e.(type) {
	case *IntLit, *BoolLit, *Ident:
		return e
	case *Unary:
		x := simplify(e.X)
		switch e.Op {
		case KindNot:
			if lit, isLit := x.(*BoolLit); isLit {
				return &BoolLit{Value: !lit.Value, Pos: e.Pos}
			}
			if inner, isNot := x.(*Unary); isNot && inner.Op == KindNot {
				return inner.X // double negation
			}
		case KindMinus:
			if lit, isLit := x.(*IntLit); isLit {
				return &IntLit{Value: -lit.Value, Pos: e.Pos}
			}
		}
		return &Unary{Op: e.Op, X: x, typ: e.typ, Pos: e.Pos}
	case *Binary:
		x, y := simplify(e.X), simplify(e.Y)
		if folded, okf := foldBinary(e, x, y); okf {
			return folded
		}
		return &Binary{Op: e.Op, X: x, Y: y, typ: e.typ, Pos: e.Pos}
	case *Cond:
		c, x, y := simplify(e.C), simplify(e.X), simplify(e.Y)
		if lit, isLit := c.(*BoolLit); isLit {
			if lit.Value {
				return x
			}
			return y
		}
		if sameExpr(x, y) {
			return x // the condition is pure: both arms agree
		}
		return &Cond{C: c, X: x, Y: y, typ: e.typ, Pos: e.Pos}
	default:
		return e
	}
}

// foldBinary applies constant folding and boolean identities.
func foldBinary(e *Binary, x, y Expr) (Expr, bool) {
	xi, xIsInt := x.(*IntLit)
	yi, yIsInt := y.(*IntLit)
	xb, xIsBool := x.(*BoolLit)
	yb, yIsBool := y.(*BoolLit)

	boolLit := func(v bool) (Expr, bool) { return &BoolLit{Value: v, Pos: e.Pos}, true }
	intLit := func(v int) (Expr, bool) { return &IntLit{Value: v, Pos: e.Pos}, true }

	switch e.Op {
	case KindAnd:
		switch {
		case xIsBool && !xb.Value, yIsBool && !yb.Value:
			return boolLit(false)
		case xIsBool && xb.Value:
			return y, true
		case yIsBool && yb.Value:
			return x, true
		}
	case KindOr:
		switch {
		case xIsBool && xb.Value, yIsBool && yb.Value:
			return boolLit(true)
		case xIsBool && !xb.Value:
			return y, true
		case yIsBool && !yb.Value:
			return x, true
		}
	case KindPlus:
		if xIsInt && yIsInt {
			return intLit(xi.Value + yi.Value)
		}
		if xIsInt && xi.Value == 0 {
			return y, true
		}
		if yIsInt && yi.Value == 0 {
			return x, true
		}
	case KindMinus:
		if xIsInt && yIsInt {
			return intLit(xi.Value - yi.Value)
		}
		if yIsInt && yi.Value == 0 {
			return x, true
		}
	case KindStar:
		if xIsInt && yIsInt {
			return intLit(xi.Value * yi.Value)
		}
		if (xIsInt && xi.Value == 1) || (yIsInt && yi.Value == 0) {
			return y, true
		}
		if (yIsInt && yi.Value == 1) || (xIsInt && xi.Value == 0) {
			return x, true
		}
	case KindSlash:
		if xIsInt && yIsInt && yi.Value != 0 {
			return intLit(floorDiv(xi.Value, yi.Value))
		}
	case KindPercent:
		if xIsInt && yIsInt && yi.Value != 0 {
			return intLit(floorMod(xi.Value, yi.Value))
		}
	case KindEq:
		if xIsInt && yIsInt {
			return boolLit(xi.Value == yi.Value)
		}
		if xIsBool && yIsBool {
			return boolLit(xb.Value == yb.Value)
		}
		if sameExpr(x, y) {
			return boolLit(true) // x == x: pure expressions
		}
	case KindNeq:
		if xIsInt && yIsInt {
			return boolLit(xi.Value != yi.Value)
		}
		if xIsBool && yIsBool {
			return boolLit(xb.Value != yb.Value)
		}
		if sameExpr(x, y) {
			return boolLit(false)
		}
	case KindLt:
		if xIsInt && yIsInt {
			return boolLit(xi.Value < yi.Value)
		}
	case KindLe:
		if xIsInt && yIsInt {
			return boolLit(xi.Value <= yi.Value)
		}
	case KindGt:
		if xIsInt && yIsInt {
			return boolLit(xi.Value > yi.Value)
		}
	case KindGe:
		if xIsInt && yIsInt {
			return boolLit(xi.Value >= yi.Value)
		}
	}
	return nil, false
}

// sameExpr reports structural equality of expressions (sound for the
// pure expression language: equal structure implies equal value).
func sameExpr(a, b Expr) bool {
	switch a := a.(type) {
	case *IntLit:
		bb, isB := b.(*IntLit)
		return isB && a.Value == bb.Value
	case *BoolLit:
		bb, isB := b.(*BoolLit)
		return isB && a.Value == bb.Value
	case *Ident:
		bb, isB := b.(*Ident)
		return isB && a.Name == bb.Name
	case *Unary:
		bb, isB := b.(*Unary)
		return isB && a.Op == bb.Op && sameExpr(a.X, bb.X)
	case *Binary:
		bb, isB := b.(*Binary)
		return isB && a.Op == bb.Op && sameExpr(a.X, bb.X) && sameExpr(a.Y, bb.Y)
	case *Cond:
		bb, isB := b.(*Cond)
		return isB && sameExpr(a.C, bb.C) && sameExpr(a.X, bb.X) && sameExpr(a.Y, bb.Y)
	default:
		return reflect.DeepEqual(a, b)
	}
}

// CertLevel grades a certification, strongest first.
type CertLevel int

// Certification levels.
const (
	// CertFailed means no refinement relation could be established: the
	// optimization must not be shipped.
	CertFailed CertLevel = iota
	// CertConvergence: the optimized automaton is a convergence
	// refinement of the original — stabilization preserved (Theorem 1).
	CertConvergence
	// CertEverywhere: an everywhere refinement — stabilization preserved
	// (Theorem 0).
	CertEverywhere
	// CertTauEquivalent: identical after stripping τ self-loops —
	// behaviorally equal as state sequences.
	CertTauEquivalent
	// CertIdentical: the very same automaton.
	CertIdentical
)

// String names the level.
func (l CertLevel) String() string {
	switch l {
	case CertIdentical:
		return "identical automaton"
	case CertTauEquivalent:
		return "identical modulo τ self-loops"
	case CertEverywhere:
		return "everywhere refinement (Theorem 0 preserves stabilization)"
	case CertConvergence:
		return "convergence refinement (Theorem 1 preserves stabilization)"
	default:
		return "NOT certified"
	}
}

// Certificate is the result of certifying an optimization against its
// original.
type Certificate struct {
	// Level grades the established relation.
	Level CertLevel
	// Detail carries the failing verdict's reason when Level is
	// CertFailed.
	Detail string
}

// Preserved reports whether stabilization properties of the original
// provably carry over to the optimized program.
func (c *Certificate) Preserved() bool { return c.Level != CertFailed }

// String renders the certificate.
func (c *Certificate) String() string {
	if c.Level == CertFailed {
		return fmt.Sprintf("NOT certified: %s", c.Detail)
	}
	return "certified: " + c.Level.String()
}
