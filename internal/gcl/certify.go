package gcl

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/system"
)

// OptimizeAndCertify runs Optimize on a compiled program, compiles the
// result over the same state space, and certifies the transformation by
// deciding a refinement relation between the two automata — the
// "stabilization-preserving refinement tool" the paper's introduction
// calls for. The optimized program is returned even when certification
// fails, so tools can report what went wrong, but Preserved() gates
// whether it is safe to adopt.
func OptimizeAndCertify(orig *Compiled) (*Compiled, *Certificate, []string, error) {
	optProg, notes := Optimize(orig.Program)
	opt, err := CompileProgram(orig.System.Name()+"|opt", optProg)
	if err != nil {
		return nil, nil, notes, fmt.Errorf("gcl: recompiling optimized program: %w", err)
	}
	if !opt.Space.SameShape(orig.Space) {
		return nil, nil, notes, fmt.Errorf("gcl: optimization changed the state space")
	}
	return opt, Certify(orig, opt), notes, nil
}

// Certify grades the relation between an original compiled program and a
// candidate replacement over the same state space.
func Certify(orig, opt *Compiled) *Certificate {
	o, n := orig.System, opt.System
	sameInit := o.Init().Equal(n.Init())
	if system.TransitionsEqual(n, o) && sameInit {
		return &Certificate{Level: CertIdentical}
	}
	if system.TransitionsEqual(n.StripSelfLoops(), o.StripSelfLoops()) && sameInit {
		// Identical as state-change behavior: τ steps (state-preserving
		// actions) are unobservable in computations-as-state-sequences.
		return &Certificate{Level: CertTauEquivalent}
	}
	if v := core.EverywhereRefinement(n, o, nil); v.Holds {
		if vi := core.RefinementInit(n, o, nil); vi.Holds {
			return &Certificate{Level: CertEverywhere}
		}
	}
	rep := core.ConvergenceRefinement(n, o, nil)
	if rep.Holds {
		return &Certificate{Level: CertConvergence}
	}
	return &Certificate{Level: CertFailed, Detail: rep.Reason}
}
