package gcl

import (
	"crypto/sha256"
	"encoding/hex"
)

// Fingerprint returns a content address for a program: the SHA-256 (hex)
// of its canonical printed form. Because the printer normalizes
// whitespace, comments, and layout, two sources that parse to the same
// AST share a fingerprint — the property checkd's verdict cache keys on.
// Structural differences (parenthesization, `x+0` vs `x`) produce
// distinct ASTs and therefore distinct fingerprints; the cache treats
// them as different programs and simply recomputes.
func Fingerprint(prog *Program) string {
	sum := sha256.Sum256([]byte(prog.String()))
	return hex.EncodeToString(sum[:])
}
