package gcl

import (
	"fmt"
	"strconv"
)

// Parse lexes and parses src into a Program. The result is not yet
// type-checked; call Check (or use Compile, which does both).
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseProgram()
}

type parser struct {
	toks []Token
	i    int
}

func (p *parser) cur() Token  { return p.toks[p.i] }
func (p *parser) next() Token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expect(kind TokenKind) (Token, error) {
	if p.cur().Kind != kind {
		return Token{}, &SyntaxError{Pos: p.cur().Pos,
			Msg: fmt.Sprintf("expected %s, found %s", kind, p.cur())}
	}
	return p.next(), nil
}

func (p *parser) parseProgram() (*Program, error) {
	prog := &Program{}
	seen := make(map[string]bool)
	for p.cur().Kind == KindVar {
		v, err := p.parseVarDecl()
		if err != nil {
			return nil, err
		}
		if seen[v.Name] {
			return nil, &SyntaxError{Pos: v.Pos, Msg: fmt.Sprintf("variable %q redeclared", v.Name)}
		}
		seen[v.Name] = true
		prog.Vars = append(prog.Vars, v)
	}
	if p.cur().Kind == KindInit {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(KindSemicolon); err != nil {
			return nil, err
		}
		prog.Init = e
	}
	actionNames := make(map[string]bool)
	for p.cur().Kind == KindAction {
		a, err := p.parseAction()
		if err != nil {
			return nil, err
		}
		if actionNames[a.Name] {
			return nil, &SyntaxError{Pos: a.Pos, Msg: fmt.Sprintf("action %q redeclared", a.Name)}
		}
		actionNames[a.Name] = true
		prog.Actions = append(prog.Actions, a)
	}
	if p.cur().Kind != KindEOF {
		return nil, &SyntaxError{Pos: p.cur().Pos,
			Msg: fmt.Sprintf("expected 'var', 'init', 'action' or end of input, found %s", p.cur())}
	}
	if len(prog.Vars) == 0 {
		return nil, &SyntaxError{Pos: Pos{1, 1}, Msg: "program declares no variables"}
	}
	return prog, nil
}

func (p *parser) parseVarDecl() (VarDecl, error) {
	kw, err := p.expect(KindVar)
	if err != nil {
		return VarDecl{}, err
	}
	name, err := p.expect(KindIdent)
	if err != nil {
		return VarDecl{}, err
	}
	if _, err := p.expect(KindColon); err != nil {
		return VarDecl{}, err
	}
	decl := VarDecl{Name: name.Text, Pos: kw.Pos}
	switch p.cur().Kind {
	case KindBool:
		p.next()
		decl.IsBool = true
	case KindInt, KindMinus:
		lo, err := p.parseSignedInt()
		if err != nil {
			return VarDecl{}, err
		}
		if _, err := p.expect(KindDotDot); err != nil {
			return VarDecl{}, err
		}
		hi, err := p.parseSignedInt()
		if err != nil {
			return VarDecl{}, err
		}
		if hi < lo {
			return VarDecl{}, &SyntaxError{Pos: name.Pos,
				Msg: fmt.Sprintf("empty domain %d..%d for %q", lo, hi, name.Text)}
		}
		decl.Lo, decl.Hi = lo, hi
	default:
		return VarDecl{}, &SyntaxError{Pos: p.cur().Pos,
			Msg: fmt.Sprintf("expected 'bool' or integer range, found %s", p.cur())}
	}
	if _, err := p.expect(KindSemicolon); err != nil {
		return VarDecl{}, err
	}
	return decl, nil
}

func (p *parser) parseSignedInt() (int, error) {
	neg := false
	if p.cur().Kind == KindMinus {
		p.next()
		neg = true
	}
	tok, err := p.expect(KindInt)
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(tok.Text)
	if err != nil {
		return 0, &SyntaxError{Pos: tok.Pos, Msg: "integer out of range"}
	}
	if neg {
		n = -n
	}
	return n, nil
}

func (p *parser) parseAction() (ActionDecl, error) {
	kw, err := p.expect(KindAction)
	if err != nil {
		return ActionDecl{}, err
	}
	name, err := p.expect(KindIdent)
	if err != nil {
		return ActionDecl{}, err
	}
	if _, err := p.expect(KindColon); err != nil {
		return ActionDecl{}, err
	}
	guard, err := p.parseExpr()
	if err != nil {
		return ActionDecl{}, err
	}
	if _, err := p.expect(KindArrow); err != nil {
		return ActionDecl{}, err
	}
	act := ActionDecl{Name: name.Text, Guard: guard, Pos: kw.Pos}
	for {
		target, err := p.expect(KindIdent)
		if err != nil {
			return ActionDecl{}, err
		}
		if _, err := p.expect(KindAssign); err != nil {
			return ActionDecl{}, err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return ActionDecl{}, err
		}
		if _, err := p.expect(KindSemicolon); err != nil {
			return ActionDecl{}, err
		}
		act.Assigns = append(act.Assigns, Assign{Name: target.Text, Expr: rhs, Pos: target.Pos})
		// Another assignment follows iff the next tokens are "ident :=".
		if p.cur().Kind == KindIdent && p.toks[p.i+1].Kind == KindAssign {
			continue
		}
		return act, nil
	}
}

// Operator precedence, loosest first: || < && < comparisons < additive <
// multiplicative < unary.
func precedence(op TokenKind) int {
	switch op {
	case KindOr:
		return 1
	case KindAnd:
		return 2
	case KindEq, KindNeq, KindLt, KindLe, KindGt, KindGe:
		return 3
	case KindPlus, KindMinus:
		return 4
	case KindStar, KindSlash, KindPercent:
		return 5
	default:
		return 0
	}
}

// parseExpr parses a full expression; the ternary conditional binds
// loosest and associates to the right.
func (p *parser) parseExpr() (Expr, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != KindQuestion {
		return cond, nil
	}
	tok := p.next()
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KindColon); err != nil {
		return nil, err
	}
	y, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &Cond{C: cond, X: x, Y: y, Pos: tok.Pos}, nil
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur().Kind
		prec := precedence(op)
		if prec < minPrec {
			return lhs, nil
		}
		opTok := p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: op, X: lhs, Y: rhs, Pos: opTok.Pos}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case KindNot:
		tok := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: KindNot, X: x, Pos: tok.Pos}, nil
	case KindMinus:
		tok := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: KindMinus, X: x, Pos: tok.Pos}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	switch tok := p.cur(); tok.Kind {
	case KindInt:
		p.next()
		n, err := strconv.Atoi(tok.Text)
		if err != nil {
			return nil, &SyntaxError{Pos: tok.Pos, Msg: "integer out of range"}
		}
		return &IntLit{Value: n, Pos: tok.Pos}, nil
	case KindTrue:
		p.next()
		return &BoolLit{Value: true, Pos: tok.Pos}, nil
	case KindFalse:
		p.next()
		return &BoolLit{Value: false, Pos: tok.Pos}, nil
	case KindIdent:
		p.next()
		return &Ident{Name: tok.Text, Index: -1, Pos: tok.Pos}, nil
	case KindLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(KindRParen); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, &SyntaxError{Pos: tok.Pos, Msg: fmt.Sprintf("expected expression, found %s", tok)}
	}
}
