package gcl

import (
	"fmt"
	"strings"
)

// Type is the type of an expression: integer or boolean.
type Type int

// Expression types.
const (
	TypeInvalid Type = iota
	TypeInt
	TypeBool
)

// String names the type.
func (t Type) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypeBool:
		return "bool"
	default:
		return "invalid"
	}
}

// Program is a parsed GCL program.
type Program struct {
	Vars    []VarDecl
	Init    Expr // nil means every state is initial
	Actions []ActionDecl
}

// VarDecl declares one finite-domain variable: either boolean or an
// integer range Lo..Hi (inclusive).
type VarDecl struct {
	Name   string
	IsBool bool
	Lo, Hi int
	Pos    Pos
}

// Card returns the domain cardinality.
func (v VarDecl) Card() int {
	if v.IsBool {
		return 2
	}
	return v.Hi - v.Lo + 1
}

// ActionDecl is one guarded command.
type ActionDecl struct {
	Name    string
	Guard   Expr
	Assigns []Assign
	Pos     Pos
}

// Assign is one assignment in an action body. All assignments of an action
// are performed simultaneously against the pre-state.
type Assign struct {
	Name string
	Expr Expr
	Pos  Pos
}

// Expr is an expression node. Type() returns the checked type and is valid
// only after Check has run on the enclosing program.
type Expr interface {
	fmt.Stringer
	Type() Type
	Position() Pos
}

// IntLit is an integer literal.
type IntLit struct {
	Value int
	Pos   Pos
}

// BoolLit is true or false.
type BoolLit struct {
	Value bool
	Pos   Pos
}

// Ident references a declared variable. Index is resolved by Check.
type Ident struct {
	Name  string
	Index int
	typ   Type
	Pos   Pos
}

// Unary is !x or -x.
type Unary struct {
	Op  TokenKind
	X   Expr
	typ Type
	Pos Pos
}

// Binary is a binary operation.
type Binary struct {
	Op   TokenKind
	X, Y Expr
	typ  Type
	Pos  Pos
}

// Cond is the ternary conditional "c ? x : y" — the expression form of
// the if-then-else cascades in the paper's Section 5.2 and 6 listings.
type Cond struct {
	C, X, Y Expr
	typ     Type
	Pos     Pos
}

// Type implementations.

// Type returns TypeInt.
func (e *IntLit) Type() Type { return TypeInt }

// Type returns TypeBool.
func (e *BoolLit) Type() Type { return TypeBool }

// Type returns the variable's checked type.
func (e *Ident) Type() Type { return e.typ }

// Type returns the checked result type.
func (e *Unary) Type() Type { return e.typ }

// Type returns the checked result type.
func (e *Binary) Type() Type { return e.typ }

// Type returns the checked result type.
func (e *Cond) Type() Type { return e.typ }

// Position implementations.

// Position returns the source position.
func (e *IntLit) Position() Pos { return e.Pos }

// Position returns the source position.
func (e *BoolLit) Position() Pos { return e.Pos }

// Position returns the source position.
func (e *Ident) Position() Pos { return e.Pos }

// Position returns the source position.
func (e *Unary) Position() Pos { return e.Pos }

// Position returns the source position.
func (e *Binary) Position() Pos { return e.Pos }

// Position returns the source position.
func (e *Cond) Position() Pos { return e.Pos }

// String renders the literal.
func (e *IntLit) String() string { return fmt.Sprintf("%d", e.Value) }

// String renders the literal.
func (e *BoolLit) String() string {
	if e.Value {
		return "true"
	}
	return "false"
}

// String renders the identifier.
func (e *Ident) String() string { return e.Name }

// String renders the operation with explicit parentheses.
func (e *Unary) String() string {
	op := "!"
	if e.Op == KindMinus {
		op = "-"
	}
	return op + parenthesize(e.X)
}

// String renders the operation with explicit parentheses around compound
// operands, so printed programs re-parse to the same tree.
func (e *Binary) String() string {
	return parenthesize(e.X) + " " + opText(e.Op) + " " + parenthesize(e.Y)
}

// String renders the conditional with explicit parentheses.
func (e *Cond) String() string {
	return parenthesize(e.C) + " ? " + parenthesize(e.X) + " : " + parenthesize(e.Y)
}

func parenthesize(e Expr) string {
	switch e.(type) {
	case *IntLit, *BoolLit, *Ident:
		return e.String()
	default:
		return "(" + e.String() + ")"
	}
}

func opText(op TokenKind) string {
	switch op {
	case KindPlus:
		return "+"
	case KindMinus:
		return "-"
	case KindStar:
		return "*"
	case KindSlash:
		return "/"
	case KindPercent:
		return "%"
	case KindEq:
		return "=="
	case KindNeq:
		return "!="
	case KindLt:
		return "<"
	case KindLe:
		return "<="
	case KindGt:
		return ">"
	case KindGe:
		return ">="
	case KindAnd:
		return "&&"
	case KindOr:
		return "||"
	default:
		return op.String()
	}
}

// String renders the whole program in parseable concrete syntax.
func (p *Program) String() string {
	var b strings.Builder
	for _, v := range p.Vars {
		if v.IsBool {
			fmt.Fprintf(&b, "var %s : bool;\n", v.Name)
		} else {
			fmt.Fprintf(&b, "var %s : %d..%d;\n", v.Name, v.Lo, v.Hi)
		}
	}
	if p.Init != nil {
		fmt.Fprintf(&b, "\ninit %s;\n", p.Init)
	}
	if len(p.Actions) > 0 {
		b.WriteByte('\n')
	}
	for _, a := range p.Actions {
		fmt.Fprintf(&b, "action %s: %s ->", a.Name, a.Guard)
		for _, as := range a.Assigns {
			fmt.Fprintf(&b, " %s := %s;", as.Name, as.Expr)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
