// Package gcl implements the guarded-command language the paper uses to
// specify systems: finite-domain variable declarations, an optional init
// predicate, and a list of actions "guard → assignments". Programs are
// lexed, parsed, type-checked, and compiled into the finite-state automata
// of internal/system, under interleaving (central daemon) semantics.
//
// The concrete syntax, chosen to transliterate the paper's listings
// directly:
//
//	// Dijkstra's 3-state token ring, N = 2 (three processes)
//	var c0 : 0..2;
//	var c1 : 0..2;
//	var c2 : 0..2;
//
//	init c0 == 0 && c1 == 0 && c2 == 1;
//
//	action bottom: c1 == (c0 + 1) % 3 -> c0 := (c1 + 1) % 3;
//	action mid_up: c0 == (c1 + 1) % 3 -> c1 := c0;
//	action mid_dn: c2 == (c1 + 1) % 3 -> c1 := c2;
//	action top:    c1 == c0 && (c1 + 1) % 3 != c2 -> c2 := (c1 + 1) % 3;
//
// Assignments within one action are simultaneous (right-hand sides are
// evaluated in the pre-state), matching guarded-command semantics.
package gcl

import "fmt"

// TokenKind enumerates lexical token kinds.
type TokenKind int

// Token kinds. KindEOF is deliberately not the zero value so an
// uninitialized token is invalid.
const (
	KindInvalid TokenKind = iota
	KindEOF
	KindIdent
	KindInt
	// Keywords.
	KindVar
	KindBool
	KindInit
	KindAction
	KindTrue
	KindFalse
	// Punctuation and operators.
	KindColon     // :
	KindSemicolon // ;
	KindComma     // ,
	KindDotDot    // ..
	KindArrow     // ->
	KindAssign    // :=
	KindLParen    // (
	KindRParen    // )
	KindPlus      // +
	KindMinus     // -
	KindStar      // *
	KindSlash     // /
	KindPercent   // %
	KindEq        // ==
	KindNeq       // !=
	KindLt        // <
	KindLe        // <=
	KindGt        // >
	KindGe        // >=
	KindAnd       // &&
	KindOr        // ||
	KindNot       // !
	KindQuestion  // ? (ternary conditional, as in the paper's if-then-else actions)
)

var kindNames = map[TokenKind]string{
	KindInvalid: "invalid", KindEOF: "end of input", KindIdent: "identifier",
	KindInt: "integer", KindVar: "'var'", KindBool: "'bool'", KindInit: "'init'",
	KindAction: "'action'", KindTrue: "'true'", KindFalse: "'false'",
	KindColon: "':'", KindSemicolon: "';'", KindComma: "','", KindDotDot: "'..'",
	KindArrow: "'->'", KindAssign: "':='", KindLParen: "'('", KindRParen: "')'",
	KindPlus: "'+'", KindMinus: "'-'", KindStar: "'*'", KindSlash: "'/'",
	KindPercent: "'%'", KindEq: "'=='", KindNeq: "'!='", KindLt: "'<'",
	KindLe: "'<='", KindGt: "'>'", KindGe: "'>='", KindAnd: "'&&'",
	KindOr: "'||'", KindNot: "'!'", KindQuestion: "'?'",
}

// String names the kind for diagnostics.
func (k TokenKind) String() string {
	if s, okk := kindNames[k]; okk {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// Pos is a 1-based source position.
type Pos struct {
	Line, Col int
}

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokenKind
	Text string
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case KindIdent, KindInt:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}

var keywords = map[string]TokenKind{
	"var":    KindVar,
	"bool":   KindBool,
	"init":   KindInit,
	"action": KindAction,
	"true":   KindTrue,
	"false":  KindFalse,
}
