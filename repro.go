// Package repro is a Go reproduction of "Convergence Refinement"
// (Demirbas & Arora, ICDCS 2002): stabilization-preserving refinement of
// finite-state systems, graybox design of stabilization via wrappers, and
// the formal derivations of Dijkstra's 3-state, 4-state, and K-state
// token-ring systems.
//
// The package is a facade over the implementation packages:
//
//   - automata over structured finite state spaces, guarded-command
//     actions, the box ([]) composition, priority composition, and
//     abstraction functions (internal/system);
//   - decision procedures for the paper's relations — refinement,
//     everywhere refinement, convergence refinement, everywhere-eventually
//     refinement, and "C is stabilizing to A" — with counterexample
//     witnesses (internal/core);
//   - every token-ring system of Sections 3–6 plus the technical report's
//     K-state derivation (internal/ring);
//   - a guarded-command language matching the paper's notation, compiled
//     to automata (internal/gcl);
//   - a ring simulator with pluggable daemons and fault injection
//     (internal/sim), the Section 1 compiler example on a small stack
//     machine (internal/vm), and the Section 1 bidding server
//     (internal/bidding);
//   - the E1–E13 experiment suite regenerating every claim
//     (internal/experiments).
//
// Quick start:
//
//	b := repro.NewBTR(3)                          // abstract ring, N=3
//	wrapped := b.Wrapped()                        // BTR [] W1 <] W2
//	rep := repro.Stabilizing(wrapped, b.System(), nil)
//	fmt.Println(rep.Verdict)                      // ✓ ... is stabilizing to ...
package repro

import (
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gcl"
	"repro/internal/mc"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/system"
	"repro/internal/vm"
)

// Automaton substrate (internal/system).
type (
	// System is the paper's finite-state automaton (Σ, T, I).
	System = system.System
	// Builder accumulates transitions and initial states for a System.
	Builder = system.Builder
	// Space is a product of finite-domain variables encoding Σ.
	Space = system.Space
	// Var is one finite-domain variable of a Space.
	Var = system.Var
	// Vals is a decoded state: one value per variable.
	Vals = system.Vals
	// Action is a guarded command over a Space.
	Action = system.Action
	// Abstraction is a total mapping between state spaces (Section 2.3).
	Abstraction = system.Abstraction
	// LabeledSystem is an automaton with action identity, for
	// fairness-aware analysis.
	LabeledSystem = system.LabeledSystem
)

// Re-exported constructors and operators of the automaton substrate.
var (
	// NewSpace builds a state space from variables.
	NewSpace = system.NewSpace
	// Bool declares a two-valued variable.
	Bool = system.Bool
	// Int declares a variable over 0..card-1.
	Int = system.Int
	// NewBuilder starts a raw automaton over [0, n).
	NewBuilder = system.NewBuilder
	// NewSpaceBuilder starts an automaton over a structured space.
	NewSpaceBuilder = system.NewSpaceBuilder
	// Enumerate compiles guarded actions into an automaton.
	Enumerate = system.Enumerate
	// Box is the paper's [] operator: union of automata.
	Box = system.Box
	// BoxAll folds Box over several systems.
	BoxAll = system.BoxAll
	// PriorityBox composes a system with a preempting wrapper.
	PriorityBox = system.PriorityBox
	// NewAbstraction tabulates an abstraction function.
	NewAbstraction = system.NewAbstraction
	// MapSpaces builds an abstraction between structured spaces.
	MapSpaces = system.MapSpaces
	// IdentityAbstraction is the identity on a shared state space.
	IdentityAbstraction = system.Identity
	// TransitionsEqual compares transition relations.
	TransitionsEqual = system.TransitionsEqual
	// WriteDOT renders an automaton in Graphviz format.
	WriteDOT = system.WriteDOT
)

// Relations and checkers (internal/core).
type (
	// Verdict is the outcome of a relation check, with witnesses.
	Verdict = core.Verdict
	// ConvergenceReport details a convergence-refinement check.
	ConvergenceReport = core.ConvergenceReport
	// StabilizationReport details a stabilization check.
	StabilizationReport = core.StabilizationReport
	// Compression is a concrete step covering a multi-step abstract path.
	Compression = core.Compression
	// TheoremCheck replays one of the paper's metatheorems on an instance.
	TheoremCheck = core.TheoremCheck
)

// Re-exported decision procedures (Sections 2 and 7).
var (
	// RefinementInit decides [C ⊑ A]_init.
	RefinementInit = core.RefinementInit
	// EverywhereRefinement decides [C ⊑ A].
	EverywhereRefinement = core.EverywhereRefinement
	// ConvergenceRefinement decides [C ⪯ A].
	ConvergenceRefinement = core.ConvergenceRefinement
	// EverywhereEventuallyRefinement decides the Section 7 relation.
	EverywhereEventuallyRefinement = core.EverywhereEventuallyRefinement
	// Stabilizing decides "C is stabilizing to A".
	Stabilizing = core.Stabilizing
	// FairStabilizing decides stabilization under weak fairness (labeled
	// systems).
	FairStabilizing = core.FairStabilizing
	// SelfStabilizing decides "A is stabilizing to A".
	SelfStabilizing = core.SelfStabilizing
	// Theorem1, Theorem3 and Theorem5 replay the paper's metatheorems.
	Theorem1 = core.Theorem1
	Theorem3 = core.Theorem3
	Theorem5 = core.Theorem5
	// Fig1 builds the Figure 1 counterexample systems.
	Fig1 = core.Fig1
	// OddEvenRecovery builds the Section 7 separation example.
	OddEvenRecovery = core.OddEvenRecovery
	// WorstCaseRecovery computes the exact adversarial worst-case number
	// of steps to the legitimate region of a stabilizing system.
	WorstCaseRecovery = mc.WorstCaseRecovery
)

// Token-ring systems (internal/ring).
type (
	// BTR is the abstract bidirectional token ring of Section 3.
	BTR = ring.BTR
	// FourState is the Section 4 encoding (BTR4, C1, Dijkstra-4).
	FourState = ring.FourState
	// ThreeState is the Section 5/6 encoding (BTR3, C2, C3, Dijkstra-3).
	ThreeState = ring.ThreeState
	// UTR is the abstract unidirectional ring of the TR derivation.
	UTR = ring.UTR
	// KState is Dijkstra's K-state system.
	KState = ring.KState
)

// Re-exported ring constructors.
var (
	// NewBTR builds the abstract bidirectional ring for top index N.
	NewBTR = ring.NewBTR
	// NewFourState builds the 4-state encoding.
	NewFourState = ring.NewFourState
	// NewThreeState builds the 3-state encoding.
	NewThreeState = ring.NewThreeState
	// NewUTR builds the unidirectional ring.
	NewUTR = ring.NewUTR
	// NewKState builds the K-state system.
	NewKState = ring.NewKState
)

// Guarded-command language (internal/gcl).
type (
	// GCLProgram is a parsed guarded-command program.
	GCLProgram = gcl.Program
	// GCLCompiled bundles a checked program with its automaton.
	GCLCompiled = gcl.Compiled
)

// Re-exported GCL entry points.
var (
	// ParseGCL parses guarded-command source.
	ParseGCL = gcl.Parse
	// CompileGCL parses, checks, and enumerates guarded-command source.
	CompileGCL = gcl.Compile
	// OptimizeGCL simplifies a compiled program and certifies the rewrite
	// stabilization preserving (the paper's "refinement tool" realized).
	OptimizeGCL = gcl.OptimizeAndCertify
)

// Simulator (internal/sim).
type (
	// Protocol is a ring protocol in local-rule form.
	Protocol = sim.Protocol
	// SimConfig is a ring configuration.
	SimConfig = sim.Config
	// Daemon schedules moves.
	Daemon = sim.Daemon
	// Runner executes a protocol under a daemon.
	Runner = sim.Runner
	// LiveRing runs a protocol with one goroutine per process.
	LiveRing = sim.LiveRing
)

// Re-exported simulator constructors.
var (
	// SimDijkstra3 builds the 3-state protocol for P processes.
	SimDijkstra3 = sim.NewDijkstra3
	// SimDijkstra4 builds the 4-state protocol.
	SimDijkstra4 = sim.NewDijkstra4
	// SimKState builds the K-state protocol.
	SimKState = sim.NewKState
	// SimNewThree builds the Section 6 protocol.
	SimNewThree = sim.NewNewThree
	// NewRandomDaemon builds a seeded random scheduler.
	NewRandomDaemon = sim.NewRandomDaemon
	// NewRoundRobinDaemon builds a cyclic scheduler.
	NewRoundRobinDaemon = sim.NewRoundRobinDaemon
	// NewGreedyDaemon builds the adversarial scheduler.
	NewGreedyDaemon = sim.NewGreedyDaemon
	// MeasureConvergence aggregates steps-to-legitimacy over many runs.
	MeasureConvergence = sim.MeasureConvergence
)

// Compiler example (internal/vm).
type (
	// VMProgram is a stack-machine program.
	VMProgram = vm.Program
	// Machine executes VM programs.
	Machine = vm.Machine
)

// Re-exported VM entry points.
var (
	// ParseMiniSource parses the Section 1 mini language.
	ParseMiniSource = vm.ParseSource
	// CompileMini compiles it with a chosen strategy.
	CompileMini = vm.Compile
)

// Experiments is the E1–E13 suite regenerating the paper's results.
var Experiments = experiments.All
